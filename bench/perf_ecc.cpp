// Perf harness for the SEC-DED hot path: mask kernel vs the retained
// bit-loop reference, patrol-scrub throughput, and a full parallel
// fault-injection campaign.  Emits machine-readable BENCH_ecc.json (path
// overridable via AFT_BENCH_JSON) so subsequent PRs have a perf trajectory
// to defend.
//
// Acceptance gate for this bench: in a Release build the combined
// encode+decode throughput of the mask kernel must be >= 10x the reference
// implementation (printed as PASS/FAIL on the summary line; the process
// still exits 0 in non-Release builds, where the gate is informational).
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "hw/fault_injector.hpp"
#include "hw/memory_chip.hpp"
#include "mem/ecc.hpp"
#include "mem/method_ecc.hpp"
#include "mem/scrubber.hpp"
#include "sim/simulator.hpp"
#include "util/campaign.hpp"
#include "util/rng.hpp"

#include "obs/cli.hpp"
#include "obs/obs.hpp"

namespace {

using aft::hw::Word72;
using aft::mem::EccStatus;
using aft::bench::best_time;
using aft::bench::Clock;
using aft::bench::json_number;
using aft::bench::kRepeats;
using aft::bench::seconds_since;

constexpr std::size_t kWorkingSet = 1 << 14;  ///< distinct words per loop

std::vector<std::uint64_t> random_words(std::size_t n, std::uint64_t seed) {
  aft::util::Xoshiro256 rng(seed);
  std::vector<std::uint64_t> out(n);
  for (auto& w : out) w = rng.next();
  return out;
}

/// Cheap fold that keeps the optimizer from discarding the work.
std::uint64_t g_sink = 0;

double encode_rate(std::uint64_t ops, bool use_ref,
                   const std::vector<std::uint64_t>& words) {
  const double secs = best_time([&] {
    std::uint64_t acc = 0;
    for (std::uint64_t i = 0; i < ops; ++i) {
      const Word72 w = use_ref
                           ? aft::mem::ecc_encode_ref(words[i % kWorkingSet])
                           : aft::mem::ecc_encode(words[i % kWorkingSet]);
      acc ^= w.data + w.check;
    }
    g_sink ^= acc;
  });
  return static_cast<double>(ops) / secs;
}

double decode_rate(std::uint64_t ops, bool use_ref,
                   const std::vector<Word72>& codewords) {
  const double secs = best_time([&] {
    std::uint64_t acc = 0;
    for (std::uint64_t i = 0; i < ops; ++i) {
      const auto dec = use_ref ? aft::mem::ecc_decode_ref(codewords[i % kWorkingSet])
                               : aft::mem::ecc_decode(codewords[i % kWorkingSet]);
      acc ^= dec.data + static_cast<std::uint64_t>(dec.status);
    }
    g_sink ^= acc;
  });
  return static_cast<double>(ops) / secs;
}

/// Patrol-scrub throughput over a device carrying a light latent-error load.
double scrub_rate() {
  aft::hw::MemoryChip chip(kWorkingSet);
  aft::mem::EccScrubAccess method(chip, kWorkingSet);
  aft::util::Xoshiro256 rng(99);
  for (std::size_t w = 0; w < kWorkingSet; ++w) method.write(w, rng.next());
  for (int i = 0; i < 512; ++i) {
    chip.inject_bit_flip(static_cast<std::size_t>(rng.uniform_int(0, kWorkingSet - 1)),
                         static_cast<unsigned>(rng.uniform_int(0, 71)));
  }
  constexpr int kPasses = 32;
  const double secs = best_time([&] {
    for (int p = 0; p < kPasses; ++p) method.scrub_step();
  });
  return static_cast<double>(kPasses) * static_cast<double>(kWorkingSet) / secs;
}

/// Full campaign wall clock: the abl_scrub_cadence shape, fanned across the
/// campaign thread pool.
struct CampaignResult {
  double wall_seconds = 0;
  std::uint64_t total_corrected = 0;
  std::size_t jobs = 0;
  unsigned threads = 0;
  std::uint64_t ticks_per_job = 0;
};

CampaignResult campaign_wall_clock() {
  CampaignResult res;
  res.jobs = 8;
  res.threads = aft::util::campaign_threads();
  res.ticks_per_job = 100000;

  const auto t0 = Clock::now();
  const auto corrected = aft::util::run_campaigns(
      res.jobs,
      [&res](std::size_t i) {
        aft::sim::Simulator sim;
        aft::hw::MemoryChip chip(256);
        aft::mem::EccScrubAccess method(chip, 256);
        aft::mem::ScrubberDaemon scrubber(sim, method, 100);
        aft::hw::FaultProfile profile;
        profile.seu_rate = 5e-3;
        aft::hw::FaultInjector injector(chip, profile, 7000 + i);
        for (std::size_t w = 0; w < 256; ++w) method.write(w, w);
        scrubber.start();
        for (std::uint64_t t = 1; t <= res.ticks_per_job; ++t) {
          sim.run_until(t);
          injector.tick();
        }
        return method.stats().corrected_singles;
      },
      res.threads);
  res.wall_seconds = seconds_since(t0);
  for (const auto c : corrected) res.total_corrected += c;
  return res;
}

/// Differential spot-check before trusting any timing: the two kernels must
/// agree on clean, single-flip, and double-flip words.
bool differential_ok() {
  aft::util::Xoshiro256 rng(1);
  for (int i = 0; i < 2000; ++i) {
    const std::uint64_t data = rng.next();
    const Word72 mask = aft::mem::ecc_encode(data);
    if (!(mask == aft::mem::ecc_encode_ref(data))) return false;
    Word72 w = mask;
    aft::hw::flip_bit(w, static_cast<unsigned>(rng.uniform_int(0, 71)));
    const auto a = aft::mem::ecc_decode(w);
    const auto b = aft::mem::ecc_decode_ref(w);
    if (a.status != b.status || a.data != b.data || !(a.repaired == b.repaired)) {
      return false;
    }
    aft::hw::flip_bit(w, static_cast<unsigned>(rng.uniform_int(0, 71)));
    if (aft::mem::ecc_decode(w).status != aft::mem::ecc_decode_ref(w).status) {
      return false;
    }
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  aft::obs::ObsCli obs(argc, argv);
  AFT_SPAN("bench", "perf_ecc");
#ifdef NDEBUG
  const char* build_type = "release";
#else
  const char* build_type = "debug";
#endif
  std::cout << "=== perf_ecc: mask SEC-DED kernel vs bit-loop reference ("
            << build_type << " build) ===\n\n";

  if (!differential_ok()) {
    std::cerr << "FATAL: mask kernel disagrees with reference — not timing a "
                 "broken kernel\n";
    return 1;
  }

  const auto words = random_words(kWorkingSet, 11);
  std::vector<Word72> clean(kWorkingSet);
  std::vector<Word72> flipped(kWorkingSet);
  for (std::size_t i = 0; i < kWorkingSet; ++i) {
    clean[i] = aft::mem::ecc_encode(words[i]);
    flipped[i] = clean[i];
    aft::hw::flip_bit(flipped[i], static_cast<unsigned>(i % 72));
  }

  constexpr std::uint64_t kMaskOps = 1 << 22;  // ~4M
  constexpr std::uint64_t kRefOps = 1 << 18;   // ~262k (the slow side)

  const double enc_mask = encode_rate(kMaskOps, false, words);
  const double enc_ref = encode_rate(kRefOps, true, words);
  const double dec_mask_clean = decode_rate(kMaskOps, false, clean);
  const double dec_ref_clean = decode_rate(kRefOps, true, clean);
  const double dec_mask_fix = decode_rate(kMaskOps, false, flipped);
  const double dec_ref_fix = decode_rate(kRefOps, true, flipped);

  // Combined encode+decode throughput: words through a full round trip.
  const double combo_mask = 1.0 / (1.0 / enc_mask + 1.0 / dec_mask_clean);
  const double combo_ref = 1.0 / (1.0 / enc_ref + 1.0 / dec_ref_clean);
  const double combo_speedup = combo_mask / combo_ref;

  const double scrub = scrub_rate();
  const CampaignResult camp = campaign_wall_clock();

  const auto row = [](const char* name, double mask, double ref) {
    std::cout << "  " << name << ": " << json_number(mask / 1e6)
              << " Mwords/s vs " << json_number(ref / 1e6)
              << " Mwords/s ref  (" << json_number(mask / ref) << "x)\n";
  };
  row("encode        ", enc_mask, enc_ref);
  row("decode clean  ", dec_mask_clean, dec_ref_clean);
  row("decode 1-flip ", dec_mask_fix, dec_ref_fix);
  std::cout << "  scrub         : " << json_number(scrub / 1e6)
            << " Mwords/s patrol\n";
  std::cout << "  campaign      : " << camp.jobs << " jobs x "
            << camp.ticks_per_job << " ticks on " << camp.threads
            << " thread(s) = " << json_number(camp.wall_seconds * 1e3)
            << " ms (corrected " << camp.total_corrected << ")\n\n";

  const bool pass = combo_speedup >= 10.0;
  std::cout << "encode+decode combined speedup: " << json_number(combo_speedup)
            << "x (gate >= 10x in release): " << (pass ? "PASS" : "FAIL")
            << "\n";

  const char* path = std::getenv("AFT_BENCH_JSON");
  if (path == nullptr || path[0] == '\0') path = "BENCH_ecc.json";
  std::ofstream json(path);
  json << "{\n"
       << "  \"bench\": \"perf_ecc\",\n"
       << "  \"build_type\": \"" << build_type << "\",\n"
       << "  \"reps\": " << kRepeats << ",\n"
       << "  \"warmup\": true,\n"
       << "  \"cpu\": \"" << aft::bench::cpu_model() << "\",\n"
       << "  \"working_set_words\": " << kWorkingSet << ",\n"
       << "  \"encode\": {\"mask_words_per_sec\": " << json_number(enc_mask)
       << ", \"ref_words_per_sec\": " << json_number(enc_ref)
       << ", \"speedup\": " << json_number(enc_mask / enc_ref) << "},\n"
       << "  \"decode_clean\": {\"mask_words_per_sec\": "
       << json_number(dec_mask_clean)
       << ", \"ref_words_per_sec\": " << json_number(dec_ref_clean)
       << ", \"speedup\": " << json_number(dec_mask_clean / dec_ref_clean)
       << "},\n"
       << "  \"decode_single_flip\": {\"mask_words_per_sec\": "
       << json_number(dec_mask_fix)
       << ", \"ref_words_per_sec\": " << json_number(dec_ref_fix)
       << ", \"speedup\": " << json_number(dec_mask_fix / dec_ref_fix)
       << "},\n"
       << "  \"encode_decode_combined_speedup\": "
       << json_number(combo_speedup) << ",\n"
       << "  \"scrub_words_per_sec\": " << json_number(scrub) << ",\n"
       << "  \"campaign\": {\"jobs\": " << camp.jobs
       << ", \"ticks_per_job\": " << camp.ticks_per_job
       << ", \"threads\": " << camp.threads
       << ", \"wall_seconds\": " << camp.wall_seconds
       << ", \"corrected_singles\": " << camp.total_corrected << "},\n"
       << "  \"gate_10x\": " << (pass ? "true" : "false") << "\n"
       << "}\n";
  std::cout << "wrote " << path << "\n";

  // The 10x gate is enforced by CI on the Release build via gate_10x; a
  // debug binary still exits 0 so the bench smoke loop stays green.
  return 0;
}
