// Ablation: patrol-scrub cadence vs uncorrectable-error rate.
//
// SEC-DED corrects one flipped bit per word; a second flip in the same word
// before the patrol visits it is uncorrectable.  The scrub period therefore
// buys robustness with bandwidth: this sweep quantifies the knee, the
// number behind M1..M4's `maintenance_cost` entries in the selector's cost
// model.
//
// Each (SEU rate, scrub period) point is an independent campaign with its
// own Simulator and RNG streams, so the sweep fans out across the
// util::campaign thread pool (AFT_THREADS); stdout is bit-identical for any
// thread count.
#include <iostream>
#include <vector>

#include "hw/fault_injector.hpp"
#include "hw/memory_chip.hpp"
#include "mem/method_ecc.hpp"
#include "mem/scrubber.hpp"
#include "obs/cli.hpp"
#include "obs/obs.hpp"
#include "sim/simulator.hpp"
#include "util/campaign.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

namespace {

struct Outcome {
  std::uint64_t uncorrectable = 0;
  std::uint64_t corrected = 0;
  std::uint64_t scrub_passes = 0;
};

Outcome run(aft::sim::SimTime scrub_period, double seu_rate, std::uint64_t steps) {
  aft::sim::Simulator sim;
  aft::hw::MemoryChip chip(256);
  aft::mem::EccScrubAccess method(chip, /*words_per_scrub_step=*/256);
  aft::mem::ScrubberDaemon scrubber(sim, method, scrub_period);

  aft::hw::FaultProfile profile;
  profile.seu_rate = seu_rate;
  aft::hw::FaultInjector injector(chip, profile, 42);

  for (std::size_t w = 0; w < 256; ++w) method.write(w, w);

  scrubber.start();
  aft::util::Xoshiro256 rng(7);
  Outcome out;
  for (std::uint64_t t = 1; t <= steps; ++t) {
    sim.run_until(t);
    injector.tick();
    // Light demand traffic: one random read per 16 ticks.
    if (t % 16 == 0) {
      const auto addr = static_cast<std::size_t>(rng.uniform_int(0, 255));
      const auto r = method.read(addr);
      if (r.status == aft::mem::ReadStatus::kUncorrectable) {
        ++out.uncorrectable;
        method.write(addr, addr);  // re-seed
      }
    }
  }
  out.corrected = method.stats().corrected_singles;
  out.scrub_passes = scrubber.passes();
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  aft::obs::ObsCli obs(argc, argv);
  AFT_SPAN("bench", "abl_scrub_cadence");
  constexpr std::uint64_t kSteps = 200000;
  std::cout << "=== Ablation: scrub cadence vs uncorrectable rate ("
            << kSteps << " ticks, 256-word device) ===\n\n";

  struct Job {
    double seu;
    aft::sim::SimTime period;
  };
  std::vector<Job> jobs;
  for (const double seu : {1e-3, 5e-3, 2e-2}) {
    for (const aft::sim::SimTime period : {10ull, 100ull, 1000ull, 10000ull}) {
      jobs.push_back(Job{seu, period});
    }
  }

  const unsigned threads = aft::util::campaign_threads();
  std::cerr << "[campaign] " << jobs.size() << " jobs on " << threads
            << " thread(s)\n";
  const std::vector<Outcome> outcomes = aft::util::run_campaigns(
      jobs.size(),
      [&jobs](std::size_t i) {
        return run(jobs[i].period, jobs[i].seu, kSteps);
      },
      threads);

  aft::util::TextTable table;
  table.header({"SEU rate/tick", "scrub period", "scrub passes",
                "singles corrected", "uncorrectable reads"});
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    const Outcome& o = outcomes[i];
    table.row({aft::util::fmt(jobs[i].seu, 3), std::to_string(jobs[i].period),
               std::to_string(o.scrub_passes), std::to_string(o.corrected),
               std::to_string(o.uncorrectable)});
  }
  std::cout << table.render() << "\n";
  std::cout << "expected shape: at each SEU rate the uncorrectable count is\n"
               "~0 for fast patrols and grows superlinearly once the patrol\n"
               "period approaches the mean per-word double-hit interval —\n"
               "the latent-error race SEC-DED scrubbing exists to win.\n";
  return 0;
}
