// The paper's "Comparison with existing strategies" paragraphs (Sects. 3.1
// and 3.2), as one live table: the SAME postponed-binding machinery driven
// by two different concerns —
//
//   performance  (mplayer/FFTW style): measure candidates on THIS machine,
//                bind the fastest; correctness is invariant, speed is the
//                objective;
//   dependability (this paper): introspect THIS platform, bind the
//                cheapest candidate that is ADEQUATE for its failure
//                semantics; adequacy is the objective, cost the tiebreak.
//
// Both postpone a design-time alternative set to deployment; they differ in
// the knowledge source and the ordering function — which is precisely the
// paper's claim of generality.
#include <iostream>

#include "hw/machine.hpp"
#include "mem/selector.hpp"
#include "tune/fft.hpp"
#include "util/table.hpp"

#include "obs/cli.hpp"
#include "obs/obs.hpp"

int main(int argc, char** argv) {
  aft::obs::ObsCli obs(argc, argv);
  AFT_SPAN("bench", "tab_binding_strategies");
  std::cout << "=== binding-strategy comparison: performance vs dependability ===\n\n";

  // --- performance-directed binding (FFTW-style planner) -------------------
  aft::tune::FftPlanner planner(3);
  aft::util::TextTable perf;
  perf.header({"FFT size", "bound algorithm", "ns/point (measured)"});
  for (const std::size_t n : {16u, 256u, 4096u, 100u}) {
    const aft::tune::Plan plan = planner.plan_for(n);
    perf.row({std::to_string(n), aft::tune::to_string(plan.kind),
              aft::util::fmt(plan.measured_ns_per_point, 1)});
  }
  std::cout << "performance concern (knowledge source: on-machine measurement):\n"
            << perf.render() << "\n";

  // --- dependability-directed binding (Sect. 3.1 selector) ------------------
  aft::mem::MethodSelector selector;
  aft::util::TextTable dep;
  dep.header({"platform", "behaviour f (introspected)", "bound method"});
  aft::hw::Machine platforms[] = {aft::hw::machines::laptop(64),
                                  aft::hw::machines::satellite_obc(64)};
  for (const aft::hw::Machine& machine : platforms) {
    const auto report = selector.analyze(machine);
    dep.row({machine.name(), report.required_label,
             report.selected() ? report.chosen : "REFUSED"});
  }
  std::cout << "dependability concern (knowledge source: SPD + failure KB):\n"
            << dep.render() << "\n";

  aft::util::TextTable contrast;
  contrast.header({"", "mplayer/FFTW style", "this paper (aft)"});
  contrast.row({"concern", "performance", "dependability"});
  contrast.row({"knowledge source", "on-machine timing", "SPD introspection + failure KB"});
  contrast.row({"candidate filter", "must be computable for n", "must tolerate behaviour f"});
  contrast.row({"ordering", "fastest measured", "cheapest adequate"});
  contrast.row({"binding time", "install / first use", "compile / deployment (+ run-time revision)"});
  contrast.row({"on wrong binding", "slow but correct", "assumption failure -> data loss"});
  std::cout << "the paper's contrast, summarized:\n" << contrast.render();
  return 0;
}
