// Tests for the simulated network substrate: Link fault models, RetryPolicy
// backoff math, the CircuitBreaker state machine, Endpoint RPC semantics
// (deadline, retry, breaker, stale-response handling), BusBridge topic
// forwarding, and heartbeat-based Membership over lossy links.
//
// Everything asserts on plain counters (LinkCounters, RpcCounters, breaker
// tallies), never on metrics or trace contents, so the whole file also runs
// under -DAFT_OBS=OFF.  One exception: the breaker-rejection quantile
// regression is about metric routing itself, so it is compiled only when
// obs is on.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "arch/event_bus.hpp"
#include "net/breaker.hpp"
#include "net/bridge.hpp"
#include "net/endpoint.hpp"
#include "net/frame.hpp"
#include "net/link.hpp"
#include "net/membership.hpp"
#include "net/retry.hpp"
#include "sim/simulator.hpp"
#include "util/rng.hpp"

#if !defined(AFT_OBS_DISABLED)
#include "obs/metrics.hpp"
#include "obs/obs.hpp"
#endif

namespace {

using aft::net::BusBridge;
using aft::net::CallOptions;
using aft::net::CircuitBreaker;
using aft::net::Endpoint;
using aft::net::Frame;
using aft::net::FrameKind;
using aft::net::Link;
using aft::net::LinkFaults;
using aft::net::Membership;
using aft::net::RetryPolicy;
using aft::net::RpcResult;
using aft::net::RpcStatus;
using aft::sim::Simulator;
using aft::sim::SimTime;

Frame data_frame(std::uint64_t id) {
  Frame f;
  f.kind = FrameKind::kData;
  f.id = id;
  return f;
}

// --- Link ----------------------------------------------------------------------

TEST(LinkTest, ZeroLatencyRejected) {
  Simulator sim;
  LinkFaults faults;
  faults.latency = 0;
  EXPECT_THROW(Link(sim, "a->b", faults, 1), std::invalid_argument);
}

TEST(LinkTest, LosslessDeliversInOrderWithFixedLatency) {
  Simulator sim;
  LinkFaults faults;
  faults.latency = 3;
  Link link(sim, "a->b", faults, 1);
  std::vector<std::pair<SimTime, std::uint64_t>> arrivals;
  link.set_receiver([&](Frame&& f) { arrivals.emplace_back(sim.now(), f.id); });
  for (std::uint64_t i = 0; i < 5; ++i) {
    sim.schedule_at(i, [&link, i] { link.send(data_frame(i)); });
  }
  sim.run_all();
  ASSERT_EQ(arrivals.size(), 5u);
  for (std::uint64_t i = 0; i < 5; ++i) {
    EXPECT_EQ(arrivals[i].first, i + 3);
    EXPECT_EQ(arrivals[i].second, i);
  }
  EXPECT_EQ(link.counters().sent, 5u);
  EXPECT_EQ(link.counters().delivered, 5u);
  EXPECT_EQ(link.counters().dropped, 0u);
  EXPECT_EQ(link.in_flight(), 0u);
  EXPECT_TRUE(faults.lossless());
}

TEST(LinkTest, DropAllLosesEveryFrame) {
  Simulator sim;
  LinkFaults faults;
  faults.drop = 1.0;
  Link link(sim, "a->b", faults, 2);
  std::size_t received = 0;
  link.set_receiver([&](Frame&&) { ++received; });
  for (std::uint64_t i = 0; i < 10; ++i) {
    EXPECT_FALSE(link.send(data_frame(i)));
  }
  sim.run_all();
  EXPECT_EQ(received, 0u);
  EXPECT_EQ(link.counters().sent, 10u);
  EXPECT_EQ(link.counters().dropped, 10u);
  EXPECT_EQ(link.counters().delivered, 0u);
}

TEST(LinkTest, SeededDropSplitsSentIntoDeliveredPlusDropped) {
  const auto run = [](std::uint64_t seed) {
    Simulator sim;
    LinkFaults faults;
    faults.drop = 0.5;
    Link link(sim, "a->b", faults, seed);
    link.set_receiver([](Frame&&) {});
    for (std::uint64_t i = 0; i < 100; ++i) link.send(data_frame(i));
    sim.run_all();
    return link.counters();
  };
  const auto c = run(7);
  EXPECT_EQ(c.delivered + c.dropped, 100u);
  EXPECT_GT(c.delivered, 0u);
  EXPECT_GT(c.dropped, 0u);
  // Same seed, same fault model, same send sequence: identical wire history.
  const auto again = run(7);
  EXPECT_EQ(again.delivered, c.delivered);
  EXPECT_EQ(again.dropped, c.dropped);
}

TEST(LinkTest, DuplicateAllDeliversTwoCopies) {
  Simulator sim;
  LinkFaults faults;
  faults.duplicate = 1.0;
  Link link(sim, "a->b", faults, 3);
  std::vector<std::uint64_t> ids;
  link.set_receiver([&](Frame&& f) { ids.push_back(f.id); });
  for (std::uint64_t i = 0; i < 10; ++i) link.send(data_frame(i));
  sim.run_all();
  EXPECT_EQ(link.counters().sent, 10u);
  EXPECT_EQ(link.counters().duplicated, 10u);
  EXPECT_EQ(link.counters().delivered, 20u);
  ASSERT_EQ(ids.size(), 20u);
}

TEST(LinkTest, ReorderHoldbackLetsLaterFramesOvertake) {
  const auto run = [] {
    Simulator sim;
    LinkFaults faults;
    faults.latency = 1;
    faults.reorder = 0.35;
    Link link(sim, "a->b", faults, 11);
    std::vector<std::uint64_t> ids;
    link.set_receiver([&](Frame&& f) { ids.push_back(f.id); });
    for (std::uint64_t i = 0; i < 20; ++i) {
      sim.schedule_at(i, [&link, i] { link.send(data_frame(i)); });
    }
    sim.run_all();
    return std::pair(ids, link.counters());
  };
  const auto [ids, counters] = run();
  ASSERT_EQ(ids.size(), 20u);
  EXPECT_GT(counters.reordered, 0u);
  // At least one held-back frame was overtaken by a later send.
  bool inverted = false;
  for (std::size_t i = 1; i < ids.size(); ++i) {
    if (ids[i] < ids[i - 1]) inverted = true;
  }
  EXPECT_TRUE(inverted);
  // And the arrival sequence replays identically.
  const auto [ids2, counters2] = run();
  EXPECT_EQ(ids2, ids);
  EXPECT_EQ(counters2.reordered, counters.reordered);
}

TEST(LinkTest, JitterBoundedAndDeterministic) {
  const auto run = [] {
    Simulator sim;
    LinkFaults faults;
    faults.latency = 2;
    faults.jitter = 5;
    Link link(sim, "a->b", faults, 13);
    std::vector<SimTime> times;
    link.set_receiver([&](Frame&&) { times.push_back(sim.now()); });
    for (std::uint64_t i = 0; i < 30; ++i) link.send(data_frame(i));
    sim.run_all();
    return times;
  };
  const auto times = run();
  ASSERT_EQ(times.size(), 30u);
  for (const SimTime t : times) {
    EXPECT_GE(t, 2u);
    EXPECT_LE(t, 7u);
  }
  EXPECT_EQ(run(), times);
}

TEST(LinkTest, PartitionSwallowsSendsButInFlightFramesArrive) {
  Simulator sim;
  LinkFaults faults;
  faults.latency = 5;
  Link link(sim, "a->b", faults, 4);
  std::vector<std::uint64_t> ids;
  link.set_receiver([&](Frame&& f) { ids.push_back(f.id); });

  EXPECT_TRUE(link.send(data_frame(1)));  // leaves before the cut
  link.partition();
  EXPECT_TRUE(link.partitioned());
  EXPECT_FALSE(link.send(data_frame(2)));  // swallowed
  sim.run_all();
  EXPECT_EQ(ids, std::vector<std::uint64_t>{1});
  EXPECT_EQ(link.counters().partition_drops, 1u);
  EXPECT_EQ(link.counters().dropped, 1u);

  link.heal();
  EXPECT_FALSE(link.partitioned());
  EXPECT_TRUE(link.send(data_frame(3)));
  sim.run_all();
  EXPECT_EQ(ids, (std::vector<std::uint64_t>{1, 3}));
}

TEST(LinkTest, FramesWithNoReceiverCountAsDropped) {
  Simulator sim;
  Link link(sim, "a->b", LinkFaults{}, 5);
  link.send(data_frame(1));
  sim.run_all();
  EXPECT_EQ(link.counters().delivered, 0u);
  EXPECT_EQ(link.counters().dropped, 1u);
}

// --- RetryPolicy ---------------------------------------------------------------

TEST(RetryPolicyTest, BackoffGrowsExponentiallyAndClamps) {
  RetryPolicy policy;
  policy.initial_backoff = 2;
  policy.multiplier = 2.0;
  policy.max_backoff = 16;
  aft::util::Xoshiro256 rng(1);
  EXPECT_EQ(policy.backoff(1, rng), 2u);
  EXPECT_EQ(policy.backoff(2, rng), 4u);
  EXPECT_EQ(policy.backoff(3, rng), 8u);
  EXPECT_EQ(policy.backoff(4, rng), 16u);
  EXPECT_EQ(policy.backoff(5, rng), 16u);  // clamped
  EXPECT_EQ(policy.backoff(0, rng), 2u);   // treated as attempt 1
}

TEST(RetryPolicyTest, JitterIsBoundedAndSeedDeterministic) {
  RetryPolicy policy;
  policy.initial_backoff = 8;
  policy.multiplier = 2.0;
  policy.max_backoff = 64;
  policy.jitter = 0.5;
  const auto draw = [&policy](std::uint64_t seed) {
    aft::util::Xoshiro256 rng(seed);
    std::vector<SimTime> delays;
    for (std::uint32_t attempt = 1; attempt <= 4; ++attempt) {
      delays.push_back(policy.backoff(attempt, rng));
    }
    return delays;
  };
  const auto delays = draw(99);
  for (std::uint32_t attempt = 1; attempt <= 4; ++attempt) {
    const SimTime base = std::min<SimTime>(8u << (attempt - 1), 64u);
    EXPECT_GE(delays[attempt - 1], base);
    EXPECT_LE(delays[attempt - 1], base + base / 2);
  }
  EXPECT_EQ(draw(99), delays);
}

TEST(RetryPolicyTest, NoneNeverRetries) {
  EXPECT_EQ(RetryPolicy::none().max_attempts, 1u);
}

// --- CircuitBreaker ------------------------------------------------------------

TEST(BreakerTest, LifecycleClosedOpenHalfOpenClosed) {
  Simulator sim;
  CircuitBreaker::Params params;
  params.cooldown = 10;
  params.probes = 1;
  CircuitBreaker breaker(sim, "to-b", params);
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kClosed);

  // Four straight failures push the score past the high threshold (3.0).
  for (int i = 0; i < 4; ++i) {
    EXPECT_TRUE(breaker.allow());
    breaker.record(false);
  }
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kOpen);
  EXPECT_EQ(breaker.opens(), 1u);

  // Open rejects until the cooldown elapses.
  EXPECT_FALSE(breaker.allow());
  EXPECT_EQ(breaker.rejected(), 1u);
  sim.advance_to(10);

  // First caller after cooldown takes the (single) probe slot.
  EXPECT_TRUE(breaker.allow());
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kHalfOpen);
  EXPECT_FALSE(breaker.allow());  // probe budget exhausted
  EXPECT_EQ(breaker.rejected(), 2u);

  // A failed probe is conclusive: back to open with a fresh cooldown.
  breaker.record(false);
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kOpen);
  EXPECT_EQ(breaker.opens(), 2u);
  EXPECT_FALSE(breaker.allow());

  // Sustained probe successes decay the evidence below the low threshold.
  // Each probe completion hands back its own token — only that releases
  // the probe slot for the next one.
  sim.advance_to(20);
  int probes = 0;
  while (breaker.state() != CircuitBreaker::State::kClosed && probes < 32) {
    CircuitBreaker::ProbeToken token = CircuitBreaker::kNotAProbe;
    ASSERT_TRUE(breaker.allow(&token));
    EXPECT_NE(token, CircuitBreaker::kNotAProbe);
    breaker.record(true, token);
    ++probes;
  }
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kClosed);
  EXPECT_GT(probes, 1);  // one good probe is not enough
  EXPECT_EQ(breaker.closes(), 1u);
  EXPECT_TRUE(breaker.allow());
}

TEST(BreakerTest, StragglerFromClosedStateDoesNotFreeAProbeSlot) {
  // Regression: record() used to decrement the half-open probe budget for
  // *any* completion.  A call admitted while the breaker was still closed
  // could straggle in after the open -> half-open transition and free a
  // probe slot it never took, letting two probes fly where the budget
  // allows one.
  Simulator sim;
  CircuitBreaker::Params params;
  params.cooldown = 10;
  params.probes = 1;
  CircuitBreaker breaker(sim, "to-b", params);

  // A call admitted while closed: no probe token.
  CircuitBreaker::ProbeToken straggler = 99;
  ASSERT_TRUE(breaker.allow(&straggler));
  EXPECT_EQ(straggler, CircuitBreaker::kNotAProbe);

  // Four other calls fail and open the breaker; cooldown elapses.
  for (int i = 0; i < 4; ++i) breaker.record(false);
  ASSERT_EQ(breaker.state(), CircuitBreaker::State::kOpen);
  sim.advance_to(10);

  // The first caller after cooldown takes the single probe slot.
  CircuitBreaker::ProbeToken probe = CircuitBreaker::kNotAProbe;
  ASSERT_TRUE(breaker.allow(&probe));
  ASSERT_EQ(breaker.state(), CircuitBreaker::State::kHalfOpen);
  EXPECT_NE(probe, CircuitBreaker::kNotAProbe);
  EXPECT_FALSE(breaker.allow());  // budget spent

  // The straggler finally completes.  Its success feeds the alpha-count as
  // evidence, but it must NOT release the slot the real probe still holds.
  breaker.record(true, straggler);
  ASSERT_EQ(breaker.state(), CircuitBreaker::State::kHalfOpen);
  EXPECT_FALSE(breaker.allow());  // used to pass: the slot was wrongly freed

  // Only the probe's own completion frees the budget.
  breaker.record(true, probe);
  EXPECT_TRUE(breaker.allow(&probe));
  EXPECT_NE(probe, CircuitBreaker::kNotAProbe);
}

TEST(BreakerTest, StaleProbeTokenFromEarlierEpisodeDoesNotFreeASlot) {
  // A probe launched in one half-open episode may outlive it (the breaker
  // re-opens, cools down, half-opens again).  Its late completion carries a
  // token from the previous episode and must not free the new episode's
  // slot.
  Simulator sim;
  CircuitBreaker::Params params;
  params.cooldown = 10;
  params.probes = 1;
  CircuitBreaker breaker(sim, "to-b", params);
  for (int i = 0; i < 4; ++i) breaker.record(false);
  sim.advance_to(10);

  CircuitBreaker::ProbeToken old_probe = CircuitBreaker::kNotAProbe;
  ASSERT_TRUE(breaker.allow(&old_probe));
  // A *different* in-flight attempt fails conclusively: back to open.
  breaker.record(false);
  ASSERT_EQ(breaker.state(), CircuitBreaker::State::kOpen);
  sim.advance_to(20);

  CircuitBreaker::ProbeToken new_probe = CircuitBreaker::kNotAProbe;
  ASSERT_TRUE(breaker.allow(&new_probe));
  ASSERT_EQ(breaker.state(), CircuitBreaker::State::kHalfOpen);
  EXPECT_NE(new_probe, old_probe);
  EXPECT_FALSE(breaker.allow());

  breaker.record(true, old_probe);  // the first episode's probe straggles in
  EXPECT_FALSE(breaker.allow());    // the new episode's slot is still taken
}

// --- Endpoint RPC --------------------------------------------------------------

/// Client and server joined by one link pair.  `fwd` carries requests
/// (client -> server), `rev` carries responses.
struct RpcWorld {
  Simulator sim;
  Link fwd;
  Link rev;
  Endpoint client;
  Endpoint server;

  explicit RpcWorld(LinkFaults fwd_faults = LinkFaults{},
                    LinkFaults rev_faults = LinkFaults{},
                    std::uint64_t seed = 42)
      : fwd(sim, "a->b", fwd_faults, seed),
        rev(sim, "b->a", rev_faults, seed + 1),
        client(sim, "client", seed + 2),
        server(sim, "server", seed + 3) {
    client.attach(rev, fwd);
    server.attach(fwd, rev);
    server.serve("echo", [](const std::string& request, std::string& response) {
      response = request;
      return true;
    });
  }
};

TEST(RpcTest, CallValidation) {
  RpcWorld w;
  CallOptions bad;
  bad.deadline = 0;
  EXPECT_THROW(w.client.call("echo", "x", bad, nullptr), std::invalid_argument);
  CallOptions no_attempts;
  no_attempts.retry.max_attempts = 0;
  EXPECT_THROW(w.client.call("echo", "x", no_attempts, nullptr),
               std::invalid_argument);
  Simulator sim;
  Endpoint unattached(sim, "lone", 1);
  EXPECT_THROW(unattached.call("echo", "x", CallOptions{}, nullptr),
               std::logic_error);
  EXPECT_THROW(unattached.send_data(Frame{}), std::logic_error);
  EXPECT_THROW(unattached.start_heartbeats(5), std::logic_error);
}

TEST(RpcTest, EchoCompletesFirstAttempt) {
  RpcWorld w;
  std::vector<RpcResult> results;
  w.client.call("echo", "hello", CallOptions{},
                [&](const RpcResult& r) { results.push_back(r); });
  w.sim.run_all();
  ASSERT_EQ(results.size(), 1u);
  EXPECT_EQ(results[0].status, RpcStatus::kOk);
  EXPECT_EQ(results[0].payload, "hello");
  EXPECT_EQ(results[0].attempts, 1u);
  EXPECT_EQ(results[0].elapsed, 2u);  // 1 tick each way
  EXPECT_EQ(w.client.counters().ok, 1u);
  EXPECT_EQ(w.server.counters().served, 1u);
  EXPECT_EQ(w.client.outstanding(), 0u);
}

TEST(RpcTest, DropAllExhaustsTheAttemptBudget) {
  LinkFaults lossy;
  lossy.drop = 1.0;
  RpcWorld w(lossy);
  CallOptions options;
  options.deadline = 5;
  options.retry.max_attempts = 3;
  options.retry.initial_backoff = 2;
  std::vector<RpcResult> results;
  w.client.call("echo", "x", options,
                [&](const RpcResult& r) { results.push_back(r); });
  w.sim.run_all();
  ASSERT_EQ(results.size(), 1u);
  EXPECT_EQ(results[0].status, RpcStatus::kExhausted);
  EXPECT_EQ(results[0].attempts, 3u);
  EXPECT_EQ(w.client.counters().attempt_failures, 3u);
  EXPECT_EQ(w.client.counters().exhausted, 1u);
  EXPECT_EQ(w.server.counters().served, 0u);
}

TEST(RpcTest, RetryRecoversOnceThePartitionHeals) {
  RpcWorld w;
  w.fwd.partition();
  CallOptions options;
  options.deadline = 5;
  options.retry.max_attempts = 3;
  options.retry.initial_backoff = 10;  // retry fires at t=15
  std::vector<RpcResult> results;
  w.client.call("echo", "x", options,
                [&](const RpcResult& r) { results.push_back(r); });
  w.sim.schedule_at(10, [link = &w.fwd] { link->heal(); });
  w.sim.run_all();
  ASSERT_EQ(results.size(), 1u);
  EXPECT_EQ(results[0].status, RpcStatus::kOk);
  EXPECT_EQ(results[0].attempts, 2u);
  EXPECT_EQ(results[0].payload, "x");
  EXPECT_EQ(w.client.counters().attempt_failures, 1u);
}

TEST(RpcTest, TimeBudgetFailsTheCallBeforeTheNextAttempt) {
  RpcWorld w;
  w.fwd.partition();
  CallOptions options;
  options.deadline = 5;
  options.retry.max_attempts = 10;
  options.retry.initial_backoff = 10;
  options.retry.time_budget = 12;  // t=5 failure + 10 backoff > 12
  std::vector<RpcResult> results;
  w.client.call("echo", "x", options,
                [&](const RpcResult& r) { results.push_back(r); });
  w.sim.run_all();
  ASSERT_EQ(results.size(), 1u);
  EXPECT_EQ(results[0].status, RpcStatus::kDeadlineExceeded);
  EXPECT_EQ(results[0].attempts, 1u);
  EXPECT_EQ(w.client.counters().deadline_exceeded, 1u);
}

TEST(RpcTest, UnknownMethodIsAnAppErrorAndRetriesUntilExhausted) {
  RpcWorld w;
  CallOptions options;
  options.deadline = 5;
  options.retry.max_attempts = 2;
  options.retry.initial_backoff = 2;
  std::vector<RpcResult> results;
  w.client.call("no-such-method", "x", options,
                [&](const RpcResult& r) { results.push_back(r); });
  w.sim.run_all();
  ASSERT_EQ(results.size(), 1u);
  EXPECT_EQ(results[0].status, RpcStatus::kExhausted);
  EXPECT_EQ(results[0].attempts, 2u);
  EXPECT_EQ(w.server.counters().served, 2u);
  EXPECT_EQ(w.client.counters().attempt_failures, 2u);
}

TEST(RpcTest, DeadlineFiringDuringBackoffDoesNotDoubleFailTheAttempt) {
  // Regression: an app-error response fails the attempt early but used to
  // leave its deadline timer armed.  With the retry backoff longer than the
  // remaining deadline, the timer fired mid-backoff, saw the attempt
  // counter unchanged (the epoch guard can't tell "still in flight" from
  // "failed, awaiting retry"), and failed the same attempt a second time —
  // double-counting breaker evidence and burning an extra attempt slot.
  RpcWorld w;
  CallOptions options;
  options.deadline = 10;                   // timer armed for t=10
  options.retry.max_attempts = 2;
  options.retry.initial_backoff = 20;      // app error at t=2, retry at t=22
  std::vector<RpcResult> results;
  w.client.call("no-such-method", "x", options,
                [&](const RpcResult& r) { results.push_back(r); });
  w.sim.run_all();
  ASSERT_EQ(results.size(), 1u);
  EXPECT_EQ(results[0].status, RpcStatus::kExhausted);
  EXPECT_EQ(results[0].attempts, 2u);
  EXPECT_EQ(w.server.counters().served, 2u);
  // Exactly one failure per attempt.  The buggy path recorded three: the
  // t=2 app error, the t=10 deadline re-fail of the same attempt, and the
  // second attempt's app error.
  EXPECT_EQ(w.client.counters().attempt_failures, 2u);
}

TEST(RpcTest, ResponsesForSupersededAttemptsAreStale) {
  // RTT (20) far exceeds the per-attempt deadline (5): both attempts time
  // out before their responses come back, and both responses must be
  // ignored — honoring either would complete a finished call.
  LinkFaults slow;
  slow.latency = 10;
  RpcWorld w(slow, slow);
  CallOptions options;
  options.deadline = 5;
  options.retry.max_attempts = 2;
  options.retry.initial_backoff = 1;
  std::vector<RpcResult> results;
  w.client.call("echo", "x", options,
                [&](const RpcResult& r) { results.push_back(r); });
  w.sim.run_all();
  ASSERT_EQ(results.size(), 1u);
  EXPECT_EQ(results[0].status, RpcStatus::kExhausted);
  EXPECT_EQ(results[0].attempts, 2u);
  EXPECT_EQ(w.server.counters().served, 2u);
  EXPECT_EQ(w.client.counters().stale_responses, 2u);
  EXPECT_EQ(w.client.counters().ok, 0u);
}

TEST(RpcTest, DuplicatedResponseCompletesOnceAndCountsStale) {
  LinkFaults dup;
  dup.duplicate = 1.0;
  RpcWorld w(LinkFaults{}, dup);
  std::vector<RpcResult> results;
  w.client.call("echo", "x", CallOptions{},
                [&](const RpcResult& r) { results.push_back(r); });
  w.sim.run_all();
  ASSERT_EQ(results.size(), 1u);  // callback fired exactly once
  EXPECT_EQ(results[0].status, RpcStatus::kOk);
  EXPECT_EQ(w.client.counters().ok, 1u);
  EXPECT_EQ(w.client.counters().stale_responses, 1u);
}

TEST(RpcTest, OpenBreakerFailsFastWithoutTouchingTheWire) {
  RpcWorld w;
  CircuitBreaker::Params params;
  params.cooldown = 1000;
  CircuitBreaker breaker(w.sim, "to-server", params);
  for (int i = 0; i < 4; ++i) breaker.record(false);
  ASSERT_EQ(breaker.state(), CircuitBreaker::State::kOpen);

  CallOptions options;
  options.breaker = &breaker;
  std::vector<RpcResult> results;
  w.client.call("echo", "x", options,
                [&](const RpcResult& r) { results.push_back(r); });
  w.sim.run_all();
  ASSERT_EQ(results.size(), 1u);
  EXPECT_EQ(results[0].status, RpcStatus::kCircuitOpen);
  EXPECT_EQ(results[0].attempts, 0u);
  EXPECT_EQ(w.fwd.counters().sent, 0u);  // nothing reached the wire
  EXPECT_EQ(w.client.counters().circuit_open, 1u);
  EXPECT_EQ(breaker.rejected(), 1u);
}

TEST(RpcTest, RepeatedTimeoutsOpenTheBreaker) {
  RpcWorld w;
  w.fwd.partition();
  CircuitBreaker::Params params;
  params.cooldown = 1000;
  CircuitBreaker breaker(w.sim, "to-server", params);
  CallOptions options;
  options.deadline = 5;
  options.retry = RetryPolicy::none();
  options.breaker = &breaker;

  std::vector<RpcStatus> statuses;
  for (int i = 0; i < 5; ++i) {
    w.client.call("echo", "x", options,
                  [&](const RpcResult& r) { statuses.push_back(r.status); });
    w.sim.run_all();
  }
  ASSERT_EQ(statuses.size(), 5u);
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(statuses[i], RpcStatus::kExhausted);
  }
  // The fourth timeout crossed the threshold; the fifth call never sends.
  EXPECT_EQ(statuses[4], RpcStatus::kCircuitOpen);
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kOpen);
  EXPECT_EQ(breaker.opens(), 1u);
  EXPECT_EQ(w.fwd.counters().sent, 4u);
}

#if !defined(AFT_OBS_DISABLED)
TEST(RpcTest, BreakerRejectionsStayOutOfTheLatencyQuantiles) {
  // Regression: finish() used to observe kCircuitOpen completions under
  // net.rpc.latency.fail and net.rpc.attempts_per_call.  Rejections take
  // zero ticks and zero attempts, so a burst of them dragged the failure
  // quantiles (and the attempts histogram) toward zero exactly when the
  // breaker was doing its job.  They now land in their own stat.
  aft::obs::MetricsRegistry metrics;
  const aft::obs::ScopedObs scope(nullptr, &metrics);

  RpcWorld w;
  w.fwd.partition();
  CircuitBreaker::Params params;
  params.cooldown = 1000;
  CircuitBreaker breaker(w.sim, "to-server", params);
  CallOptions options;
  options.deadline = 5;
  options.retry = RetryPolicy::none();
  options.breaker = &breaker;

  // Four timeouts open the breaker; the next three calls are rejections.
  for (int i = 0; i < 7; ++i) {
    w.client.call("echo", "x", options, nullptr);
    w.sim.run_all();
  }
  EXPECT_EQ(w.client.counters().exhausted, 4u);
  EXPECT_EQ(w.client.counters().circuit_open, 3u);

  const aft::obs::Stat* fail = metrics.find_stat("net.rpc.latency.fail");
  const aft::obs::Stat* attempts =
      metrics.find_stat("net.rpc.attempts_per_call");
  const aft::obs::Stat* rejected =
      metrics.find_stat("net.rpc.latency.rejected");
  ASSERT_NE(fail, nullptr);
  ASSERT_NE(attempts, nullptr);
  ASSERT_NE(rejected, nullptr);
  // Only the four genuine failures feed the fail/attempts distributions...
  EXPECT_EQ(fail->count(), 4u);
  EXPECT_EQ(attempts->count(), 4u);
  // ...so their minima reflect real calls (5-tick deadline, 1 attempt), not
  // the 0-tick/0-attempt rejections that used to pollute them.
  EXPECT_GE(fail->min(), 5.0);
  EXPECT_GE(attempts->min(), 1.0);
  // The rejections are still accounted for — under their own name.
  EXPECT_EQ(rejected->count(), 3u);
}
#endif  // !defined(AFT_OBS_DISABLED)

// --- Async serving + admission pushback ----------------------------------------

TEST(AsyncServeTest, ResponderCompletesTheCallAfterAQueuedDelay) {
  RpcWorld w;
  std::vector<Endpoint::Responder> parked;
  w.server.serve_async("work", [&parked](const std::string& request,
                                         Endpoint::Responder responder) {
    EXPECT_EQ(request, "job");
    parked.push_back(responder);
  });

  std::vector<RpcResult> results;
  CallOptions options;
  options.deadline = 100;
  w.client.call("work", "job", options,
                [&](const RpcResult& r) { results.push_back(r); });
  w.sim.run_until(10);
  // The server holds the responder; the client is still waiting.
  ASSERT_EQ(parked.size(), 1u);
  EXPECT_TRUE(results.empty());
  EXPECT_EQ(w.client.outstanding(), 1u);
  EXPECT_EQ(w.server.counters().served, 1u);

  parked[0].respond("done");
  w.sim.run_until(20);
  ASSERT_EQ(results.size(), 1u);
  EXPECT_EQ(results[0].status, RpcStatus::kOk);
  EXPECT_EQ(results[0].payload, "done");
  EXPECT_GE(results[0].elapsed, 10u);  // the parked wait is part of the call
  EXPECT_EQ(w.client.outstanding(), 0u);
}

TEST(AsyncServeTest, RejectIsADistinctImmediateOutcomeNotATimeout) {
  RpcWorld w;
  w.server.serve_async("work", [](const std::string&,
                                  Endpoint::Responder responder) {
    responder.reject();
  });

  std::vector<RpcResult> results;
  CallOptions options;
  options.deadline = 500;
  options.retry.max_attempts = 3;  // pushback must NOT be retried
  w.client.call("work", "job", options,
                [&](const RpcResult& r) { results.push_back(r); });
  w.sim.run_all();

  ASSERT_EQ(results.size(), 1u);
  EXPECT_EQ(results[0].status, RpcStatus::kRejected);
  EXPECT_EQ(results[0].attempts, 1u);
  EXPECT_LT(results[0].elapsed, 10u);  // one RTT, nothing like the deadline
  EXPECT_EQ(w.client.counters().rejected, 1u);
  EXPECT_EQ(w.client.counters().exhausted, 0u);
  EXPECT_EQ(w.client.counters().deadline_exceeded, 0u);
  EXPECT_EQ(w.server.counters().served, 1u);
}

TEST(AsyncServeTest, AsyncFailIsAnAppErrorAndRetries) {
  RpcWorld w;
  std::uint64_t requests = 0;
  w.server.serve_async("work", [&requests](const std::string&,
                                           Endpoint::Responder responder) {
    // First attempt fails (an app error, retried); the retry succeeds.
    if (++requests == 1) {
      responder.fail();
    } else {
      responder.respond("second-time");
    }
  });

  std::vector<RpcResult> results;
  CallOptions options;
  options.deadline = 200;
  options.retry.max_attempts = 2;
  options.retry.initial_backoff = 4;
  w.client.call("work", "job", options,
                [&](const RpcResult& r) { results.push_back(r); });
  w.sim.run_all();

  ASSERT_EQ(results.size(), 1u);
  EXPECT_EQ(results[0].status, RpcStatus::kOk);
  EXPECT_EQ(results[0].payload, "second-time");
  EXPECT_EQ(results[0].attempts, 2u);
  EXPECT_EQ(requests, 2u);
}

#if !defined(AFT_OBS_DISABLED)
TEST(AsyncServeTest, RejectionsLandInTheRejectedQuantileStream) {
  // Metric-routing regression (mirrors the breaker one): server pushback
  // must never pollute the ok-latency quantiles the SLO plane consumes.
  aft::obs::MetricsRegistry reg;
  aft::obs::ScopedObs scope(nullptr, &reg);
  RpcWorld w;
  bool shed = true;
  w.server.serve_async("work", [&shed](const std::string&,
                                       Endpoint::Responder responder) {
    if (shed) {
      responder.reject();
    } else {
      responder.respond("ok");
    }
  });
  w.client.call("work", "a", CallOptions{}, nullptr);
  w.sim.run_all();
  shed = false;
  w.client.call("work", "b", CallOptions{}, nullptr);
  w.sim.run_all();

  const auto* rejected = reg.find_stat("net.rpc.latency.rejected");
  ASSERT_NE(rejected, nullptr);
  EXPECT_EQ(rejected->count(), 1u);
  const auto* ok = reg.find_stat("net.rpc.latency.ok");
  ASSERT_NE(ok, nullptr);
  EXPECT_EQ(ok->count(), 1u);
}
#endif

// --- BusBridge -----------------------------------------------------------------

/// Two nodes, each with a bus, an endpoint, and a bridge, joined by a link
/// pair.  Bridges are constructed last so they can take the data plane.
struct BridgeWorld {
  Simulator sim;
  aft::arch::EventBus bus_a;
  aft::arch::EventBus bus_b;
  Link a2b;
  Link b2a;
  Endpoint ep_a;
  Endpoint ep_b;
  BusBridge bridge_a;
  BusBridge bridge_b;

  explicit BridgeWorld(LinkFaults faults = LinkFaults{})
      : a2b(sim, "a->b", faults, 21),
        b2a(sim, "b->a", faults, 22),
        ep_a(sim, "node-a", 23),
        ep_b(sim, "node-b", 24),
        bridge_a(bus_a, ep_a, "A"),
        bridge_b(bus_b, ep_b, "B") {
    ep_a.attach(b2a, a2b);
    ep_b.attach(a2b, b2a);
  }
};

TEST(BridgeTest, ForwardsATopicToTheRemoteBus) {
  BridgeWorld w;
  w.bridge_a.forward_topic("detect.clash");
  std::vector<aft::arch::Message> remote;
  w.bus_b.subscribe("detect.clash",
                    [&](const aft::arch::Message& m) { remote.push_back(m); });
  w.bus_a.publish({"detect.clash", "detector-7", "threshold crossed"});
  w.sim.run_all();
  ASSERT_EQ(remote.size(), 1u);
  EXPECT_EQ(remote[0].topic, "detect.clash");
  EXPECT_EQ(remote[0].source, "detector-7");
  EXPECT_EQ(remote[0].payload, "threshold crossed");
  EXPECT_EQ(w.bridge_a.forwarded(), 1u);
  EXPECT_EQ(w.bridge_b.republished(), 1u);
}

TEST(BridgeTest, BidirectionalBridgesDoNotEcho) {
  BridgeWorld w;
  w.bridge_a.forward_topic("detect.clash");
  w.bridge_b.forward_topic("detect.clash");
  std::size_t seen_a = 0;
  std::size_t seen_b = 0;
  w.bus_a.subscribe("detect.clash", [&](const aft::arch::Message&) { ++seen_a; });
  w.bus_b.subscribe("detect.clash", [&](const aft::arch::Message&) { ++seen_b; });
  w.bus_a.publish({"detect.clash", "detector-7", "once"});
  w.sim.run_all();
  // One local delivery, one remote delivery, no ping-pong.
  EXPECT_EQ(seen_a, 1u);
  EXPECT_EQ(seen_b, 1u);
  EXPECT_EQ(w.bridge_a.forwarded(), 1u);
  EXPECT_EQ(w.bridge_b.forwarded(), 0u);  // the republish is not re-forwarded
  EXPECT_EQ(w.bridge_b.republished(), 1u);
  EXPECT_EQ(w.a2b.counters().sent, 1u);
  EXPECT_EQ(w.b2a.counters().sent, 0u);
}

TEST(BridgeTest, StopUnsubscribesAllTopics) {
  BridgeWorld w;
  w.bridge_a.forward_topic("t1");
  w.bridge_a.forward_topic("t2");
  w.bridge_a.stop();
  w.bus_a.publish({"t1", "s", "x"});
  w.bus_a.publish({"t2", "s", "y"});
  w.sim.run_all();
  EXPECT_EQ(w.bridge_a.forwarded(), 0u);
  EXPECT_EQ(w.a2b.counters().sent, 0u);
}

// --- Membership ----------------------------------------------------------------

TEST(MembershipTest, SilenceTakesAMemberDownAndReinstateBringsItBack) {
  Simulator sim;
  Membership::Params params;
  params.deadline = 10;
  Membership membership(sim, params);
  std::vector<std::pair<std::string, bool>> changes;
  membership.on_change(
      [&](const std::string& m, bool up) { changes.emplace_back(m, up); });

  membership.track("b");
  EXPECT_TRUE(membership.up("b"));
  EXPECT_EQ(membership.size(), 1u);

  // No beats at all: misses at t=10,20,30,40 push the score to 4 > 3.
  sim.run_until(60);
  EXPECT_FALSE(membership.up("b"));
  EXPECT_EQ(membership.downs(), 1u);
  EXPECT_EQ(membership.up_count(), 0u);
  ASSERT_EQ(changes.size(), 1u);
  EXPECT_EQ(changes[0], std::pair(std::string("b"), false));

  // Unit replacement: the cleared evidence must notify back to "up" —
  // this rides on FaultDiscriminator::reset_channel firing its handlers.
  membership.reinstate("b");
  EXPECT_TRUE(membership.up("b"));
  EXPECT_EQ(membership.ups(), 1u);
  ASSERT_EQ(changes.size(), 2u);
  EXPECT_EQ(changes[1], std::pair(std::string("b"), true));
}

TEST(MembershipTest, BeatsFromUnknownOriginsAreCountedAndIgnored) {
  Simulator sim;
  Membership membership(sim, Membership::Params{});
  membership.beat("stranger");
  EXPECT_EQ(membership.unknown_beats(), 1u);
  EXPECT_FALSE(membership.up("stranger"));
  membership.reinstate("stranger");  // harmless no-op
  EXPECT_EQ(membership.size(), 0u);
}

TEST(MembershipTest, HeartbeatsOverTheWireKeepAMemberUpThroughAPartition) {
  Simulator sim;
  Link c2s(sim, "client->server", LinkFaults{}, 31);
  Link s2c(sim, "server->client", LinkFaults{}, 32);
  Endpoint client(sim, "client", 33);
  Endpoint server(sim, "server", 34);
  client.attach(s2c, c2s);
  server.attach(c2s, s2c);

  Membership::Params params;
  params.deadline = 10;
  Membership membership(sim, params);
  membership.track("client");
  server.on_heartbeat(
      [&](const std::string& origin) { membership.beat(origin); });
  client.start_heartbeats(4);

  sim.run_until(100);
  EXPECT_TRUE(membership.up("client"));
  EXPECT_EQ(membership.downs(), 0u);
  EXPECT_GT(server.heartbeats_received(), 20u);

  // A partition silences the beats; consecutive misses take the member down.
  c2s.partition();
  sim.run_until(200);
  EXPECT_FALSE(membership.up("client"));
  EXPECT_EQ(membership.downs(), 1u);

  // Heal + administrative reinstate: beats resume and the member stays up.
  c2s.heal();
  membership.reinstate("client");
  EXPECT_TRUE(membership.up("client"));
  sim.run_until(300);
  EXPECT_TRUE(membership.up("client"));
  EXPECT_EQ(membership.downs(), 1u);  // no further flaps
  EXPECT_EQ(membership.ups(), 1u);
}

TEST(MembershipTest, StoppedHeartbeatsNoLongerArrive) {
  Simulator sim;
  Link c2s(sim, "client->server", LinkFaults{}, 35);
  Link s2c(sim, "server->client", LinkFaults{}, 36);
  Endpoint client(sim, "client", 37);
  Endpoint server(sim, "server", 38);
  client.attach(s2c, c2s);
  server.attach(c2s, s2c);
  client.start_heartbeats(5);
  sim.run_until(50);
  const std::uint64_t before = server.heartbeats_received();
  EXPECT_GT(before, 0u);
  client.stop_heartbeats();
  sim.run_all();
  // At most the already in-flight beat arrives after the stop.
  EXPECT_LE(server.heartbeats_received(), before + 1);
}

TEST(MembershipTest, OnMissSurfacesRawMonitorEvidenceWithConsecutiveCounts) {
  Simulator sim;
  Membership::Params params;
  params.deadline = 10;
  Membership membership(sim, params);
  std::vector<std::pair<std::string, std::uint64_t>> misses;
  membership.on_miss([&](const std::string& member, std::uint64_t consecutive) {
    misses.emplace_back(member, consecutive);
  });
  membership.track("b");
  // No beats at all: windows at t=10,20,30 each miss, counting up.
  sim.run_until(35);
  ASSERT_EQ(misses.size(), 3u);
  for (std::size_t i = 0; i < misses.size(); ++i) {
    EXPECT_EQ(misses[i].first, "b");
    EXPECT_EQ(misses[i].second, i + 1);
  }
  // The miss stream is below the judgment layer: all three misses fired
  // even though the alpha-count verdict has not flipped the member yet.
  EXPECT_TRUE(membership.up("b"));
  // Once the evidence does cross the threshold the stream keeps counting.
  sim.run_until(60);
  EXPECT_FALSE(membership.up("b"));
  EXPECT_GE(misses.size(), 5u);
  EXPECT_EQ(misses.back().second, misses.size());  // still consecutive
}

#if !defined(AFT_OBS_DISABLED)
TEST(MembershipTest, DownEvidenceIsReQueriedFreshOnEverySecondDownTransition) {
  // Pin: the evidence hook runs once per down transition, never cached —
  // the second outage's member-down record must join to the *second*
  // outage's physical evidence.
  aft::obs::TraceSink sink;
  aft::obs::ScopedObs scope(&sink, nullptr);
  Simulator sim;
  Membership::Params params;
  params.deadline = 10;
  Membership membership(sim, params);
  std::vector<std::string> queries;
  membership.set_down_evidence([&queries](const std::string& member) {
    queries.push_back(member);
    return aft::obs::kNoEvent;
  });
  membership.track("b");

  sim.run_until(60);  // first outage
  EXPECT_FALSE(membership.up("b"));
  ASSERT_EQ(queries.size(), 1u);
  EXPECT_EQ(queries[0], "b");

  membership.reinstate("b");
  EXPECT_TRUE(membership.up("b"));
  EXPECT_EQ(queries.size(), 1u);  // up transitions never consult it

  sim.run_until(160);  // second outage: a fresh query, not a cached id
  EXPECT_FALSE(membership.up("b"));
  ASSERT_EQ(queries.size(), 2u);
  EXPECT_EQ(queries[1], "b");
  EXPECT_EQ(membership.downs(), 2u);
}
#endif

}  // namespace
