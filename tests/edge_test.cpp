// Edge-case grab bag: lot variability scaling, experiment CSV export, and
// corner behaviours across modules that the per-module suites don't pin.
#include <gtest/gtest.h>

#include "autonomic/experiment.hpp"
#include "hw/fault_injector.hpp"
#include "mem/selector.hpp"
#include "sim/processes.hpp"
#include "util/histogram.hpp"
#include "vote/voter.hpp"

namespace {

// --- hw::scaled: lot-to-lot variability ------------------------------------------

TEST(LotVariabilityTest, ScaledMultipliesRatesOnly) {
  const aft::hw::FaultProfile base = aft::hw::profiles::sdram_sel_seu();
  const aft::hw::FaultProfile bad_lot = aft::hw::scaled(base, 10.0);
  EXPECT_DOUBLE_EQ(bad_lot.seu_rate, base.seu_rate * 10);
  EXPECT_DOUBLE_EQ(bad_lot.sel_rate, base.sel_rate * 10);
  EXPECT_DOUBLE_EQ(bad_lot.sefi_rate, base.sefi_rate * 10);
  EXPECT_DOUBLE_EQ(bad_lot.stuck_rate, base.stuck_rate * 10);
  EXPECT_DOUBLE_EQ(bad_lot.multi_bit_fraction, base.multi_bit_fraction);
  EXPECT_TRUE(aft::hw::scaled(aft::hw::profiles::stable(), 100.0).benign());
}

TEST(LotVariabilityTest, OrderOfMagnitudeShowsUpInCampaigns) {
  aft::hw::MemoryChip golden_chip(64), bad_chip(64);
  const auto base = aft::hw::profiles::cmos();
  aft::hw::FaultInjector golden(golden_chip, aft::hw::scaled(base, 0.5), 1);
  aft::hw::FaultInjector bad(bad_chip, aft::hw::scaled(base, 20.0), 1);
  golden.run(200000);
  bad.run(200000);
  ASSERT_GT(bad.log().seu, 0u);
  EXPECT_GT(static_cast<double>(bad.log().seu),
            10.0 * static_cast<double>(golden.log().seu + 1));
}

// --- Experiment CSV export ----------------------------------------------------------

TEST(ExperimentCsvTest, SeriesRoundTripShape) {
  aft::autonomic::ExperimentConfig config;
  config.series_sample_every = 100;
  const auto result = aft::autonomic::run_adaptation_experiment(
      config, {aft::autonomic::DisturbancePhase{1000, 0.0}});
  const std::string csv = result.series_csv();
  EXPECT_EQ(csv.substr(0, csv.find('\n')), "step,replicas,dtof,fault_injected");
  // 10 samples + header = 11 lines.
  EXPECT_EQ(std::count(csv.begin(), csv.end(), '\n'), 11);
  EXPECT_NE(csv.find("\n0,3,2,0\n"), std::string::npos);
}

// --- Misc corners --------------------------------------------------------------------

TEST(HistogramEdgeTest, ModeTieGoesToSmallestKey) {
  aft::util::Histogram h;
  h.add(5, 3);
  h.add(2, 3);
  EXPECT_EQ(h.mode(), 2);  // map order: smallest key wins the tie
}

TEST(HistogramEdgeTest, NegativeKeysSupported) {
  aft::util::Histogram h;
  h.add(-7, 2);
  EXPECT_EQ(h.count(-7), 2u);
  EXPECT_EQ(h.mode(), -7);
}

TEST(PoissonEdgeTest, ExtremeRateStillProgresses) {
  aft::sim::PoissonProcess p(1e9, 3);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(p.next_gap(), 1u);
  aft::sim::PoissonProcess tiny(1e-18, 3);
  EXPECT_GT(tiny.next_gap(), std::uint64_t{1} << 40);
}

TEST(VoterEdgeTest, AllDistinctBallotsNeverHaveMajorityBeyondOne) {
  for (std::size_t n = 2; n <= 9; ++n) {
    std::vector<aft::vote::Ballot> ballots;
    for (std::size_t i = 0; i < n; ++i) {
      ballots.push_back(static_cast<aft::vote::Ballot>(i));
    }
    EXPECT_FALSE(aft::vote::majority_vote(ballots).has_majority) << n;
  }
}

TEST(SelectorEdgeTest, EmptyMachineSelectsNothing) {
  aft::hw::Machine empty("no-banks");
  aft::mem::MethodSelector selector;
  const auto report = selector.analyze(empty);
  // No banks: behaviour resolves to f0 (vacuous union) and M0 would be
  // adequate — but it needs one device, which the machine lacks.
  EXPECT_FALSE(report.selected());
}

TEST(SelectorEdgeTest, CustomCatalogRespected) {
  // A catalog with only M4: even an f0 platform binds it (cheapest adequate
  // of what EXISTS), proving the selector does not hardcode names.
  std::vector<aft::mem::MethodDescriptor> catalog;
  for (auto& d : aft::mem::standard_catalog()) {
    if (d.name == "M4-tmr-ecc") catalog.push_back(std::move(d));
  }
  aft::mem::MethodSelector selector(aft::mem::KnowledgeBase::with_defaults(),
                                    std::move(catalog));
  aft::hw::Machine laptop = aft::hw::machines::laptop(64);
  const auto report = selector.analyze(laptop);
  EXPECT_FALSE(report.selected());  // laptop has only 2 banks; M4 needs 3

  aft::hw::Machine obc = aft::hw::machines::satellite_obc(64);
  const auto report2 = selector.analyze(obc);
  ASSERT_TRUE(report2.selected());
  EXPECT_EQ(report2.chosen, "M4-tmr-ecc");
}

}  // namespace
