// Tests for the detection substrate: the Alpha-count filter ([20],[21]),
// the per-channel fault discriminator, and the watchdog/watched-task pair
// of the paper's Fig. 4.
#include <gtest/gtest.h>

#include <cmath>

#include "detect/alpha_count.hpp"
#include "detect/discriminator.hpp"
#include "detect/watchdog.hpp"
#include "sim/simulator.hpp"

namespace {

using namespace aft::detect;
using aft::sim::Simulator;

// --- AlphaCount ----------------------------------------------------------------

TEST(AlphaCountTest, ParameterValidation) {
  EXPECT_THROW(AlphaCount(AlphaCount::Params{.decay = 0.0, .threshold = 3.0}),
               std::invalid_argument);
  EXPECT_THROW(AlphaCount(AlphaCount::Params{.decay = 1.0, .threshold = 3.0}),
               std::invalid_argument);
  EXPECT_THROW(AlphaCount(AlphaCount::Params{.decay = 0.5, .threshold = 0.0}),
               std::invalid_argument);
}

TEST(AlphaCountTest, DefaultsAreTheFig4Parameters) {
  AlphaCount ac;
  EXPECT_DOUBLE_EQ(ac.params().threshold, 3.0);
  EXPECT_DOUBLE_EQ(ac.params().decay, 0.7);
}

TEST(AlphaCountTest, NoErrorsNoEvidence) {
  AlphaCount ac;
  for (int i = 0; i < 100; ++i) ac.record(false);
  EXPECT_EQ(ac.judgment(), FaultJudgment::kNoEvidence);
  EXPECT_DOUBLE_EQ(ac.score(), 0.0);
}

TEST(AlphaCountTest, ScoreArithmetic) {
  AlphaCount ac(AlphaCount::Params{.decay = 0.5, .threshold = 10.0});
  EXPECT_DOUBLE_EQ(ac.record(true), 1.0);
  EXPECT_DOUBLE_EQ(ac.record(true), 2.0);
  EXPECT_DOUBLE_EQ(ac.record(false), 1.0);   // * 0.5
  EXPECT_DOUBLE_EQ(ac.record(false), 0.5);
  EXPECT_DOUBLE_EQ(ac.record(true), 1.5);
  EXPECT_EQ(ac.rounds(), 5u);
  EXPECT_EQ(ac.errors(), 3u);
}

TEST(AlphaCountTest, IsolatedTransientsStayBelowThreshold) {
  // One error every 20 rounds with K=0.7 decays far below T=3.
  AlphaCount ac;
  for (int i = 0; i < 2000; ++i) ac.record(i % 20 == 0);
  EXPECT_EQ(ac.judgment(), FaultJudgment::kTransient);
  EXPECT_FALSE(ac.threshold_crossed());
}

TEST(AlphaCountTest, PermanentFaultCrossesAtDeterministicRound) {
  // Errors every round: alpha = n, crosses T=3.0 strictly after round 4
  // (alpha=4 > 3).
  AlphaCount ac;
  ac.record(true);  // 1
  ac.record(true);  // 2
  ac.record(true);  // 3 (not > 3)
  EXPECT_EQ(ac.judgment(), FaultJudgment::kTransient);
  ac.record(true);  // 4 > 3 -> crossed
  EXPECT_EQ(ac.judgment(), FaultJudgment::kPermanentOrIntermittent);
}

TEST(AlphaCountTest, IntermittentBurstsAlsoCross) {
  // Bursty errors (3 on, 2 off) accumulate past the threshold even though
  // no single burst does: the intermittent signature.
  AlphaCount ac;
  bool crossed = false;
  for (int i = 0; i < 50 && !crossed; ++i) {
    crossed = ac.record(i % 5 < 3) > 3.0 || ac.threshold_crossed();
  }
  EXPECT_TRUE(ac.threshold_crossed());
}

TEST(AlphaCountTest, VerdictLatchesAcrossQuietPeriods) {
  AlphaCount ac;
  for (int i = 0; i < 5; ++i) ac.record(true);
  ASSERT_TRUE(ac.threshold_crossed());
  for (int i = 0; i < 1000; ++i) ac.record(false);
  EXPECT_EQ(ac.judgment(), FaultJudgment::kPermanentOrIntermittent);
  EXPECT_LT(ac.score(), 1e-6);  // score decayed, verdict did not
}

TEST(AlphaCountTest, ResetClearsVerdictAndScore) {
  AlphaCount ac;
  for (int i = 0; i < 5; ++i) ac.record(true);
  ac.reset();
  // reset() returns the detector to its birth state.  It used to retain
  // errors_/rounds_, so judgment() reported kTransient forever after a
  // reset even though no new evidence had been observed.
  EXPECT_EQ(ac.judgment(), FaultJudgment::kNoEvidence);
  EXPECT_EQ(ac.errors(), 0u);
  EXPECT_EQ(ac.rounds(), 0u);
  EXPECT_DOUBLE_EQ(ac.score(), 0.0);
  EXPECT_FALSE(ac.threshold_crossed());
}

TEST(AlphaCountTest, PostResetJudgmentTracksOnlyNewEvidence) {
  AlphaCount ac;
  for (int i = 0; i < 50; ++i) ac.record(true);
  EXPECT_TRUE(ac.threshold_crossed());
  ac.reset();
  // A single clean round after reset must read as a healthy component,
  // not as a transient echo of pre-reset history.
  ac.record(false);
  EXPECT_EQ(ac.judgment(), FaultJudgment::kNoEvidence);
  EXPECT_EQ(ac.rounds(), 1u);
}

/// Discrimination property over a parameter sweep: a permanent fault must
/// always cross; a sparse transient must never cross.
struct AlphaSweep {
  double decay;
  double threshold;
};

class AlphaCountSweepTest : public ::testing::TestWithParam<AlphaSweep> {};

TEST_P(AlphaCountSweepTest, DiscriminatesPermanentFromSparseTransient) {
  const auto [decay, threshold] = GetParam();
  AlphaCount permanent(AlphaCount::Params{decay, threshold});
  AlphaCount transient(AlphaCount::Params{decay, threshold});
  for (int i = 0; i < 500; ++i) {
    permanent.record(true);
    transient.record(i % 50 == 0);  // sparse: decays fully between errors
  }
  EXPECT_TRUE(permanent.threshold_crossed());
  EXPECT_FALSE(transient.threshold_crossed());
}

INSTANTIATE_TEST_SUITE_P(
    ParamGrid, AlphaCountSweepTest,
    ::testing::Values(AlphaSweep{0.3, 2.0}, AlphaSweep{0.5, 3.0},
                      AlphaSweep{0.7, 3.0}, AlphaSweep{0.7, 5.0},
                      AlphaSweep{0.9, 6.0}),
    [](const ::testing::TestParamInfo<AlphaSweep>& param_info) {
      return "K" + std::to_string(static_cast<int>(param_info.param.decay * 10)) +
             "_T" + std::to_string(static_cast<int>(param_info.param.threshold));
    });

// --- FaultDiscriminator -----------------------------------------------------------

TEST(DiscriminatorTest, PerChannelIsolation) {
  FaultDiscriminator d;
  for (int i = 0; i < 10; ++i) {
    d.record("healthy", false);
    d.record("broken", true);
  }
  EXPECT_EQ(d.judgment("healthy"), FaultJudgment::kNoEvidence);
  EXPECT_EQ(d.judgment("broken"), FaultJudgment::kPermanentOrIntermittent);
  EXPECT_EQ(d.judgment("never-seen"), FaultJudgment::kNoEvidence);
  EXPECT_EQ(d.channel_count(), 2u);
}

TEST(DiscriminatorTest, VerdictChangeHandlerFiresOnTransitionsOnly) {
  FaultDiscriminator d;
  std::vector<std::pair<std::string, FaultJudgment>> events;
  d.on_verdict_change([&](const std::string& ch, FaultJudgment j) {
    events.emplace_back(ch, j);
  });
  for (int i = 0; i < 10; ++i) d.record("c", true);
  // Two transitions: NoEvidence->Transient (first error),
  // Transient->PermanentOrIntermittent (threshold crossing).
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].second, FaultJudgment::kTransient);
  EXPECT_EQ(events[1].second, FaultJudgment::kPermanentOrIntermittent);
}

TEST(DiscriminatorTest, ResetChannelAfterReplacement) {
  FaultDiscriminator d;
  for (int i = 0; i < 10; ++i) d.record("c", true);
  ASSERT_EQ(d.judgment("c"), FaultJudgment::kPermanentOrIntermittent);
  d.reset_channel("c");
  EXPECT_NE(d.judgment("c"), FaultJudgment::kPermanentOrIntermittent);
  EXPECT_DOUBLE_EQ(d.score("c"), 0.0);
  d.reset_channel("unknown");  // harmless no-op
}

// Regression: reset_channel() used to update the stored judgment silently,
// so the kPermanentOrIntermittent -> kNoEvidence transition of a unit
// replacement never reached the verdict-change subscribers — a switchboard
// that suspended the channel was never told to re-arm it.
TEST(DiscriminatorTest, ResetChannelNotifiesSubscribersOfTheTransition) {
  FaultDiscriminator d;
  std::vector<std::pair<std::string, FaultJudgment>> events;
  d.on_verdict_change([&](const std::string& ch, FaultJudgment j) {
    events.emplace_back(ch, j);
  });
  for (int i = 0; i < 10; ++i) d.record("c", true);
  ASSERT_EQ(events.size(), 2u);  // NoEvidence->Transient->Permanent

  d.reset_channel("c");
  ASSERT_EQ(events.size(), 3u);
  EXPECT_EQ(events[2].first, "c");
  EXPECT_EQ(events[2].second, FaultJudgment::kNoEvidence);

  // A reset that does not move the verdict stays silent: the channel is
  // already at kNoEvidence, so a second reset is not a transition.
  d.reset_channel("c");
  EXPECT_EQ(events.size(), 3u);
}

// Regression: the notification loop was a range-for over the handler
// vector, so a handler subscribing another handler re-entrantly could
// reallocate the vector mid-iteration and invalidate the loop.  The index
// loop delivers to the handlers present when the transition fired; late
// subscribers hear about subsequent transitions only.
TEST(DiscriminatorTest, HandlerMaySubscribeReentrantlyDuringNotification) {
  FaultDiscriminator d;
  int outer_calls = 0;
  int inner_calls = 0;
  d.on_verdict_change([&](const std::string&, FaultJudgment) {
    ++outer_calls;
    // Force reallocation pressure: several re-entrant subscriptions.
    for (int i = 0; i < 4; ++i) {
      d.on_verdict_change(
          [&](const std::string&, FaultJudgment) { ++inner_calls; });
    }
  });
  d.record("c", true);  // NoEvidence -> Transient
  EXPECT_EQ(outer_calls, 1);
  EXPECT_EQ(inner_calls, 0);  // not invoked for the transition that added them

  for (int i = 0; i < 9; ++i) d.record("c", true);  // -> Permanent
  EXPECT_EQ(outer_calls, 2);
  EXPECT_EQ(inner_calls, 4);  // the first four subscribers hear the second
}

// --- Watchdog / WatchedTask ---------------------------------------------------------

TEST(WatchdogTest, ZeroDeadlineRejected) {
  Simulator sim;
  EXPECT_THROW(Watchdog(sim, 0, [](aft::sim::SimTime) {}), std::invalid_argument);
}

TEST(WatchdogTest, HealthyTaskNeverFiresTheDog) {
  Simulator sim;
  Watchdog dog(sim, 10, [](aft::sim::SimTime) {});
  WatchedTask task(sim, dog, 5);  // kicks twice per window
  dog.start();
  task.start();
  sim.run_until(1000);
  EXPECT_EQ(dog.firings(), 0u);
  EXPECT_EQ(dog.windows(), 100u);
  EXPECT_EQ(task.kicks_delivered(), 200u);
}

TEST(WatchdogTest, PermanentFaultFiresEveryWindow) {
  Simulator sim;
  std::vector<aft::sim::SimTime> firings;
  Watchdog dog(sim, 10, [&](aft::sim::SimTime t) { firings.push_back(t); });
  WatchedTask task(sim, dog, 5);
  dog.start();
  task.start();
  sim.run_until(100);
  EXPECT_TRUE(firings.empty());
  task.inject_permanent_fault();
  sim.run_until(200);
  // Every window after the injection misses: ~10 firings.
  EXPECT_GE(firings.size(), 9u);
  EXPECT_TRUE(task.faulty());
}

TEST(WatchdogTest, TransientFaultFiresBriefly) {
  Simulator sim;
  Watchdog dog(sim, 10, [](aft::sim::SimTime) {});
  WatchedTask task(sim, dog, 10);
  dog.start();
  task.start();
  task.inject_transient_fault(3);  // miss 3 kicks then recover
  sim.run_until(500);
  EXPECT_GE(dog.firings(), 1u);
  EXPECT_LE(dog.firings(), 4u);
  EXPECT_FALSE(task.faulty());
}

TEST(WatchdogTest, RepairStopsTheFirings) {
  Simulator sim;
  Watchdog dog(sim, 10, [](aft::sim::SimTime) {});
  WatchedTask task(sim, dog, 5);
  dog.start();
  task.start();
  task.inject_permanent_fault();
  sim.run_until(100);
  const auto before = dog.firings();
  ASSERT_GT(before, 0u);
  task.repair();
  sim.run_until(300);
  EXPECT_LE(dog.firings(), before + 1);  // at most one boundary window
}

TEST(WatchdogTest, StopDisarms) {
  Simulator sim;
  Watchdog dog(sim, 10, [](aft::sim::SimTime) {});
  WatchedTask task(sim, dog, 5);
  dog.start();
  task.start();
  task.inject_permanent_fault();
  sim.run_until(50);
  dog.stop();
  const auto frozen = dog.firings();
  sim.run_until(500);
  EXPECT_EQ(dog.firings(), frozen);
}

TEST(WatchdogTest, RestartRunsASingleWindowChain) {
  // stop() disarms lazily (the pending check is left scheduled); start()
  // before that check fired used to add a second chain, after which every
  // silent window was counted twice.  With the epoch guard a stop/start
  // cycle fires exactly one check per deadline.
  Simulator sim;
  Watchdog dog(sim, 10, [](aft::sim::SimTime) {});
  dog.start();  // check pending at t=10
  sim.run_until(5);
  dog.stop();
  dog.start();  // fresh chain: checks at 15, 25, 35, ...
  sim.run_until(105);  // 10 windows, no kicks
  EXPECT_EQ(dog.windows(), 10u);
  EXPECT_EQ(dog.firings(), 10u);
}

TEST(WatchdogTest, WatchedTaskRestartKicksOncePerPeriod) {
  Simulator sim;
  Watchdog dog(sim, 10, [](aft::sim::SimTime) {});
  WatchedTask task(sim, dog, 5);
  dog.start();
  task.start();  // tick pending at t=5
  sim.run_until(2);
  task.stop();
  task.start();  // fresh chain: ticks at 7, 12, 17, ...
  sim.run_until(52);  // 10 periods
  EXPECT_EQ(task.kicks_delivered(), 10u);
  EXPECT_EQ(dog.firings(), 0u);  // healthy task: the dog stays quiet
}

// --- The Fig. 4 scenario end-to-end --------------------------------------------------

TEST(Fig4ScenarioTest, WatchdogFeedsAlphaCountUntilPermanentLabel) {
  // "A permanent design fault is repeatedly injected in the watched task.
  //  As a consequence, the watchdog fires and an alpha-count variable is
  //  updated.  The value of that variable increases until it overcomes a
  //  threshold (3.0) and correspondingly the fault is labeled as
  //  'permanent or intermittent'."
  Simulator sim;
  AlphaCount alpha;  // K=0.7, T=3.0
  Watchdog dog(sim, 10, [&](aft::sim::SimTime) { alpha.record(true); });
  WatchedTask task(sim, dog, 5);
  dog.start();
  task.start();

  sim.run_until(200);  // healthy phase: no firings, no score
  EXPECT_DOUBLE_EQ(alpha.score(), 0.0);

  task.inject_permanent_fault();
  // The kick delivered at t=200 still satisfies the t=210 window; the four
  // windows after that (220..250) all miss, driving alpha to 4 > 3.
  sim.run_until(200 + 60);
  EXPECT_EQ(alpha.judgment(), FaultJudgment::kPermanentOrIntermittent);
  EXPECT_GT(alpha.score(), 3.0);
}

}  // namespace
