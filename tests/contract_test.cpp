// Tests for the contract layer: clause evaluation & implication algebra,
// WS-Policy-style service-contract matching, and Design-by-Contract
// component wrappers.
#include <gtest/gtest.h>

#include <memory>

#include "contract/clause.hpp"
#include "contract/contracted_component.hpp"
#include "contract/service_contract.hpp"

namespace {

using namespace aft::contract;
using aft::core::Context;

// --- Clause evaluation -----------------------------------------------------------

TEST(ClauseTest, NumericComparisons) {
  Context ctx;
  ctx.set("latency", 7.5);
  EXPECT_EQ(clause_le("latency", 10.0).evaluate(ctx), true);
  EXPECT_EQ(clause_le("latency", 5.0).evaluate(ctx), false);
  EXPECT_EQ(clause_ge("latency", 7.5).evaluate(ctx), true);
  EXPECT_EQ(clause_lt("latency", 7.5).evaluate(ctx), false);
  EXPECT_EQ(clause_gt("latency", 7.0).evaluate(ctx), true);
}

TEST(ClauseTest, IntAndDoubleInteroperate) {
  Context ctx;
  ctx.set("replicas", std::int64_t{5});
  EXPECT_EQ(clause_ge("replicas", 3.0).evaluate(ctx), true);
  EXPECT_EQ(clause_eq("replicas", 5.0).evaluate(ctx), true);
  EXPECT_EQ(clause_eq("replicas", std::int64_t{5}).evaluate(ctx), true);
}

TEST(ClauseTest, StringAndBoolEquality) {
  Context ctx;
  ctx.set("region", std::string("eu"));
  ctx.set("encrypted", true);
  EXPECT_EQ(clause_eq("region", std::string("eu")).evaluate(ctx), true);
  EXPECT_EQ(clause_ne("region", std::string("us")).evaluate(ctx), true);
  EXPECT_EQ(clause_eq("encrypted", true).evaluate(ctx), true);
  // Ordered comparison on strings is not supported: unsatisfied, not UB.
  EXPECT_EQ((Clause{"region", Op::kLt, std::string("zz")}.evaluate(ctx)), false);
}

TEST(ClauseTest, MissingKeyIsUnobservableNotFalse) {
  Context ctx;
  EXPECT_FALSE(clause_le("nope", 1.0).evaluate(ctx).has_value());
}

TEST(ClauseTest, ToStringIsReadable) {
  EXPECT_EQ(clause_le("latency.ms", 10.0).to_string(), "latency.ms <= 10.0");
  EXPECT_EQ(clause_eq("region", std::string("eu")).to_string(), "region == eu");
  EXPECT_EQ(clause_eq("on", true).to_string(), "on == true");
}

// --- Clause implication ------------------------------------------------------------

TEST(ClauseImplicationTest, TighterUpperBoundImpliesLooser) {
  EXPECT_TRUE(clause_le("x", 5.0).implies(clause_le("x", 10.0)));
  EXPECT_FALSE(clause_le("x", 10.0).implies(clause_le("x", 5.0)));
  EXPECT_TRUE(clause_le("x", 5.0).implies(clause_le("x", 5.0)));  // reflexive
}

TEST(ClauseImplicationTest, TighterLowerBoundImpliesLooser) {
  EXPECT_TRUE(clause_ge("x", 9.0).implies(clause_ge("x", 3.0)));
  EXPECT_FALSE(clause_ge("x", 3.0).implies(clause_ge("x", 9.0)));
}

TEST(ClauseImplicationTest, StrictVsNonStrict) {
  EXPECT_TRUE(clause_lt("x", 5.0).implies(clause_le("x", 5.0)));
  EXPECT_FALSE(clause_le("x", 5.0).implies(clause_lt("x", 5.0)));
  EXPECT_TRUE(clause_le("x", 4.0).implies(clause_lt("x", 5.0)));
  EXPECT_TRUE(clause_gt("x", 5.0).implies(clause_ge("x", 5.0)));
}

TEST(ClauseImplicationTest, EqualityImpliesWhatItSatisfies) {
  EXPECT_TRUE(clause_eq("x", 4.0).implies(clause_le("x", 5.0)));
  EXPECT_TRUE(clause_eq("x", 4.0).implies(clause_ge("x", 4.0)));
  EXPECT_FALSE(clause_eq("x", 6.0).implies(clause_le("x", 5.0)));
  EXPECT_TRUE(clause_eq("r", std::string("eu")).implies(
      clause_eq("r", std::string("eu"))));
}

TEST(ClauseImplicationTest, BoundsImplyInequality) {
  EXPECT_TRUE(clause_lt("x", 5.0).implies(clause_ne("x", 5.0)));
  EXPECT_TRUE(clause_gt("x", 5.0).implies(clause_ne("x", 5.0)));
  EXPECT_FALSE(clause_le("x", 5.0).implies(clause_ne("x", 5.0)));
}

TEST(ClauseImplicationTest, DifferentKeysNeverImply) {
  EXPECT_FALSE(clause_le("x", 1.0).implies(clause_le("y", 100.0)));
}

TEST(ClauseImplicationTest, OpParsingRoundTrip) {
  for (const Op op : {Op::kEq, Op::kNe, Op::kLt, Op::kLe, Op::kGt, Op::kGe}) {
    EXPECT_EQ(parse_op(to_string(op)), op);
  }
  EXPECT_FALSE(parse_op("~=").has_value());
}

// --- Service-contract matching -------------------------------------------------------

TEST(ServiceContractTest, CompatibleWhenGuaranteesImplyRequirements) {
  ServiceContract supplier{.service = "storage",
                           .guarantees = {clause_le("latency.ms", 5.0),
                                          clause_ge("durability.nines", 11.0),
                                          clause_eq("encrypted", true)},
                           .requirements = {}};
  ServiceContract client{.service = "ledger",
                         .guarantees = {},
                         .requirements = {clause_le("latency.ms", 10.0),
                                          clause_ge("durability.nines", 9.0),
                                          clause_eq("encrypted", true)}};
  const MatchReport report = match(client, supplier);
  EXPECT_TRUE(report.compatible);
  EXPECT_TRUE(report.unmatched.empty());
}

TEST(ServiceContractTest, UnmatchedRequirementRefusesBinding) {
  ServiceContract supplier{.service = "storage",
                           .guarantees = {clause_le("latency.ms", 50.0)},
                           .requirements = {}};
  ServiceContract client{.service = "ledger",
                         .guarantees = {},
                         .requirements = {clause_le("latency.ms", 10.0)}};
  const MatchReport report = match(client, supplier);
  EXPECT_FALSE(report.compatible);
  ASSERT_EQ(report.unmatched.size(), 1u);
  EXPECT_EQ(report.unmatched[0].key, "latency.ms");
  // The log records the refusal for the audit trail.
  bool refused = false;
  for (const auto& line : report.log) {
    if (line.find("INCOMPATIBLE") != std::string::npos) refused = true;
  }
  EXPECT_TRUE(refused);
}

TEST(ServiceContractTest, EmptyRequirementsAlwaysMatch) {
  const MatchReport report =
      match(ServiceContract{.service = "c", .guarantees = {}, .requirements = {}},
            ServiceContract{.service = "s", .guarantees = {}, .requirements = {}});
  EXPECT_TRUE(report.compatible);
}

TEST(ServiceContractTest, RunTimeVerificationFlagsBrokenGuarantees) {
  ServiceContract supplier{
      .service = "storage",
      .guarantees = {clause_le("latency.ms", 5.0), clause_eq("encrypted", true),
                     clause_ge("throughput", 100.0)},
      .requirements = {}};
  Context observed;
  observed.set("latency.ms", 12.0);   // violated
  observed.set("encrypted", true);    // holds
  // throughput not measured -> unobservable
  const VerificationReport report = verify_guarantees(supplier, observed);
  EXPECT_FALSE(report.ok());
  ASSERT_EQ(report.violated.size(), 1u);
  EXPECT_EQ(report.violated[0].key, "latency.ms");
  ASSERT_EQ(report.unobservable.size(), 1u);
  EXPECT_EQ(report.unobservable[0].key, "throughput");
}

// --- ContractedComponent ---------------------------------------------------------------

TEST(ContractedComponentTest, NullInnerRejected) {
  EXPECT_THROW(ContractedComponent("c", nullptr, nullptr, nullptr, nullptr),
               std::invalid_argument);
}

TEST(ContractedComponentTest, CleanPathUntouched) {
  auto inner = std::make_shared<aft::arch::ScriptedComponent>(
      "i", [](std::int64_t v) { return v * 2; });
  ContractedComponent c(
      "c", inner, [](std::int64_t in) { return in >= 0; },
      [](std::int64_t in, std::int64_t out) { return out == in * 2; }, nullptr);
  const auto r = c.process(21);
  EXPECT_TRUE(r.ok);
  EXPECT_EQ(r.value, 42);
  EXPECT_EQ(c.precondition_violations(), 0u);
  EXPECT_EQ(c.postcondition_violations(), 0u);
}

TEST(ContractedComponentTest, PreconditionViolationFailsCall) {
  auto inner = std::make_shared<aft::arch::ScriptedComponent>("i");
  ContractedComponent c("c", inner, [](std::int64_t in) { return in >= 0; },
                        nullptr, nullptr);
  EXPECT_FALSE(c.process(-1).ok);
  EXPECT_EQ(c.precondition_violations(), 1u);
  EXPECT_EQ(inner->invocations(), 0u);  // supplier never ran on a bad input
}

TEST(ContractedComponentTest, PostconditionCatchesSilentCorruption) {
  auto inner = std::make_shared<aft::arch::ScriptedComponent>(
      "i", [](std::int64_t v) { return v + 1; });
  ContractedComponent c("c", inner, nullptr,
                        [](std::int64_t in, std::int64_t out) { return out == in + 1; },
                        nullptr);
  inner->corrupt_next(1, 100);  // ok=true but wrong value
  EXPECT_FALSE(c.process(0).ok);  // the contract catches what status cannot
  EXPECT_EQ(c.postcondition_violations(), 1u);
  EXPECT_TRUE(c.process(0).ok);
}

TEST(ContractedComponentTest, InvariantViolationFailsCall) {
  bool healthy = true;
  auto inner = std::make_shared<aft::arch::ScriptedComponent>("i");
  ContractedComponent c("c", inner, nullptr, nullptr, [&] { return healthy; });
  EXPECT_TRUE(c.process(1).ok);
  healthy = false;
  EXPECT_FALSE(c.process(1).ok);
  EXPECT_EQ(c.invariant_violations(), 1u);
}

TEST(ContractedComponentTest, MonitorModeCountsButPasses) {
  auto inner = std::make_shared<aft::arch::ScriptedComponent>(
      "i", [](std::int64_t v) { return v + 1; });
  ContractedComponent c("c", inner, nullptr,
                        [](std::int64_t, std::int64_t) { return false; }, nullptr,
                        ViolationPolicy::kPassThrough);
  const auto r = c.process(5);
  EXPECT_TRUE(r.ok);  // monitor mode: observe, do not interfere
  EXPECT_EQ(r.value, 6);
  EXPECT_EQ(c.postcondition_violations(), 1u);
}

TEST(ContractedComponentTest, InnerFailureIsNotAContractViolation) {
  auto inner = std::make_shared<aft::arch::ScriptedComponent>("i");
  ContractedComponent c("c", inner, nullptr,
                        [](std::int64_t, std::int64_t) { return true; }, nullptr);
  inner->fail_next(1);
  EXPECT_FALSE(c.process(1).ok);
  EXPECT_EQ(c.postcondition_violations(), 0u);  // never evaluated on failure
}

}  // namespace
