// Unit tests for util::InlineFn — the kernel's small-buffer callable: inline
// storage for small captures, heap overflow for large ones, move-only
// ownership, deterministic destruction.
#include <gtest/gtest.h>

#include <array>
#include <cstddef>
#include <functional>
#include <memory>
#include <utility>

#include "util/inline_fn.hpp"

namespace {

using aft::util::InlineFn;
using Fn = InlineFn<void(), 64>;

/// Callable that reports construction/destruction/move traffic, optionally
/// padded past the inline budget.
template <std::size_t Pad>
struct Probe {
  int* destroyed;
  int* moved;
  std::array<char, Pad> padding{};

  Probe(int* d, int* m) : destroyed(d), moved(m) {}
  Probe(Probe&& other) noexcept : destroyed(other.destroyed), moved(other.moved) {
    other.destroyed = nullptr;
    if (moved != nullptr) ++*moved;
  }
  Probe(const Probe&) = delete;
  Probe& operator=(const Probe&) = delete;
  Probe& operator=(Probe&&) = delete;
  ~Probe() {
    if (destroyed != nullptr) ++*destroyed;
  }
  void operator()() const {}
};

using SmallProbe = Probe<1>;    // fits the 64-byte buffer
using BigProbe = Probe<128>;    // must overflow to the heap

static_assert(Fn::stores_inline<SmallProbe>);
static_assert(!Fn::stores_inline<BigProbe>);

TEST(InlineFnTest, DefaultConstructedIsEmptyAndThrowsOnCall) {
  Fn fn;
  EXPECT_FALSE(static_cast<bool>(fn));
  EXPECT_THROW(fn(), std::bad_function_call);
  Fn null_fn = nullptr;
  EXPECT_FALSE(static_cast<bool>(null_fn));
}

TEST(InlineFnTest, InvokesWithArgumentsAndReturnValue) {
  InlineFn<int(int, int)> add = [](int a, int b) { return a + b; };
  EXPECT_EQ(add(20, 22), 42);
  int state = 0;
  InlineFn<void(int)> accumulate = [&state](int x) { state += x; };
  accumulate(5);
  accumulate(7);
  EXPECT_EQ(state, 12);
}

TEST(InlineFnTest, MutableCallableKeepsStatePerInvocation) {
  InlineFn<int()> counter = [n = 0]() mutable { return ++n; };
  EXPECT_EQ(counter(), 1);
  EXPECT_EQ(counter(), 2);
  EXPECT_EQ(counter(), 3);
}

TEST(InlineFnTest, MoveTransfersOwnershipAndEmptiesSource) {
  int calls = 0;
  Fn a = [&calls] { ++calls; };
  Fn b = std::move(a);
  EXPECT_FALSE(static_cast<bool>(a));  // NOLINT(bugprone-use-after-move)
  ASSERT_TRUE(static_cast<bool>(b));
  b();
  EXPECT_EQ(calls, 1);
  EXPECT_THROW(a(), std::bad_function_call);
}

TEST(InlineFnTest, InlineStorageDestroysExactlyOnce) {
  int destroyed = 0;
  int moved = 0;
  {
    Fn fn(SmallProbe(&destroyed, &moved));
    // The temporary probe was moved into the buffer and destroyed; the live
    // copy inside fn is not destroyed yet.
    EXPECT_EQ(destroyed, 0);  // moved-from temporaries don't count (nulled)
    EXPECT_GE(moved, 1);
  }
  EXPECT_EQ(destroyed, 1);
}

TEST(InlineFnTest, MoveRelocatesInlineTargetWithoutDoubleDestroy) {
  int destroyed = 0;
  {
    Fn a(SmallProbe(&destroyed, nullptr));
    Fn b = std::move(a);
    Fn c;
    c = std::move(b);
    ASSERT_TRUE(static_cast<bool>(c));
    c();
    EXPECT_EQ(destroyed, 0);  // the live probe is still alive inside c
  }
  EXPECT_EQ(destroyed, 1);  // and is destroyed exactly once
}

TEST(InlineFnTest, OversizedCallableOverflowsToHeapAndStillWorks) {
  int destroyed = 0;
  {
    Fn fn(BigProbe(&destroyed, nullptr));
    ASSERT_TRUE(static_cast<bool>(fn));
    fn();
    // Heap relocation is a pointer steal: no extra destruction on move.
    Fn other = std::move(fn);
    other();
    EXPECT_EQ(destroyed, 0);
  }
  EXPECT_EQ(destroyed, 1);
}

TEST(InlineFnTest, ThrowingMoveCallableIsStoredOnTheHeap) {
  // A callable whose move may throw cannot live in the inline buffer
  // (InlineFn's moves are noexcept), so it must take the heap path and
  // still behave.
  struct ThrowingMove {
    int value = 7;
    ThrowingMove() = default;
    ThrowingMove(ThrowingMove&& other) : value(other.value) {}  // not noexcept
    ThrowingMove(const ThrowingMove&) = default;
    int operator()() const { return value; }
  };
  static_assert(!InlineFn<int()>::stores_inline<ThrowingMove>);
  InlineFn<int()> fn = ThrowingMove{};
  EXPECT_EQ(fn(), 7);
  InlineFn<int()> moved = std::move(fn);
  EXPECT_EQ(moved(), 7);
}

TEST(InlineFnTest, MoveOnlyCapturesAreSupported) {
  auto payload = std::make_unique<int>(41);
  InlineFn<int()> fn = [p = std::move(payload)] { return *p + 1; };
  EXPECT_EQ(fn(), 42);
  InlineFn<int()> stolen = std::move(fn);
  EXPECT_EQ(stolen(), 42);
}

TEST(InlineFnTest, ResetAndNullptrAssignmentDestroyTheTarget) {
  int destroyed = 0;
  Fn fn(SmallProbe(&destroyed, nullptr));
  fn.reset();
  EXPECT_EQ(destroyed, 1);
  EXPECT_FALSE(static_cast<bool>(fn));
  fn.reset();  // idempotent
  EXPECT_EQ(destroyed, 1);

  Fn gn(SmallProbe(&destroyed, nullptr));
  gn = nullptr;
  EXPECT_EQ(destroyed, 2);
  EXPECT_FALSE(static_cast<bool>(gn));
}

TEST(InlineFnTest, MoveAssignmentDestroysThePreviousTarget) {
  int first_destroyed = 0;
  int second_destroyed = 0;
  Fn fn(SmallProbe(&first_destroyed, nullptr));
  fn = Fn(SmallProbe(&second_destroyed, nullptr));
  EXPECT_EQ(first_destroyed, 1);
  EXPECT_EQ(second_destroyed, 0);
  fn.reset();
  EXPECT_EQ(second_destroyed, 1);
}

TEST(InlineFnTest, StdFunctionItselfFitsInline) {
  // Clients occasionally pass a std::function lvalue (the recursive
  // scheduling idiom in sim_test); it is stored inline, so the InlineFn
  // layer itself still adds no allocation.
  static_assert(Fn::stores_inline<std::function<void()>>);
  int calls = 0;
  std::function<void()> wrapped = [&calls] { ++calls; };
  Fn fn = wrapped;  // copies the std::function into the buffer
  fn();
  EXPECT_EQ(calls, 1);
  wrapped();  // the original is untouched
  EXPECT_EQ(calls, 2);
}

TEST(InlineFnTest, CapacityBoundaryIsExact) {
  struct Exactly64 {
    std::array<char, 64> bytes{};
    void operator()() const {}
  };
  struct Bytes65 {
    std::array<char, 65> bytes{};
    void operator()() const {}
  };
  static_assert(Fn::stores_inline<Exactly64>);
  static_assert(!Fn::stores_inline<Bytes65>);
  Fn a = Exactly64{};
  Fn b = Bytes65{};
  a();
  b();
}

}  // namespace
