// Tests for the memory access methods M0..M4 of Sect. 3.1: per-method
// behaviour under the fault classes each is designed (or not designed) to
// tolerate, plus statistical adequacy campaigns (method Mi under profile
// fj preserves data integrity iff Mi tolerates fj).
#include <gtest/gtest.h>

#include <memory>

#include "hw/fault_injector.hpp"
#include "hw/memory_chip.hpp"
#include "mem/ecc.hpp"
#include "mem/method_ecc.hpp"
#include "mem/method_mirror.hpp"
#include "mem/method_raw.hpp"
#include "mem/method_remap.hpp"
#include "mem/method_tmr.hpp"
#include "mem/scrubber.hpp"
#include "sim/simulator.hpp"
#include "util/rng.hpp"

namespace {

using namespace aft::mem;
using aft::hw::ChipState;
using aft::hw::MemoryChip;
using aft::hw::Word72;
using aft::util::Xoshiro256;

// --- M0 raw ------------------------------------------------------------------

TEST(RawAccessTest, RoundTrip) {
  MemoryChip chip(16);
  RawAccess m(chip);
  EXPECT_TRUE(m.write(3, 0xABCD));
  const ReadResult r = m.read(3);
  EXPECT_EQ(r.status, ReadStatus::kOk);
  EXPECT_EQ(r.value, 0xABCDu);
}

TEST(RawAccessTest, SilentlyReturnsCorruptedData) {
  MemoryChip chip(16);
  RawAccess m(chip);
  m.write(0, 0);
  chip.inject_bit_flip(0, 5);
  const ReadResult r = m.read(0);
  EXPECT_EQ(r.status, ReadStatus::kOk);   // no detection at all
  EXPECT_EQ(r.value, 32u);                // wrong data, silently
}

TEST(RawAccessTest, UnavailableDevice) {
  MemoryChip chip(16);
  RawAccess m(chip);
  chip.inject_latch_up();
  EXPECT_EQ(m.read(0).status, ReadStatus::kUnavailable);
  EXPECT_FALSE(m.write(0, 1));
  EXPECT_EQ(m.stats().data_losses, 1u);
}

TEST(RawAccessTest, ToleratesOnlyF0) {
  MemoryChip chip(4);
  RawAccess m(chip);
  EXPECT_TRUE(m.tolerates(FailureSemantics::kF0Stable));
  EXPECT_FALSE(m.tolerates(FailureSemantics::kF1TransientCmos));
  EXPECT_FALSE(m.tolerates(FailureSemantics::kF4SdramSelSeu));
}

// --- M1 ECC + scrub -------------------------------------------------------------

TEST(EccScrubTest, CorrectsSingleBitFlip) {
  MemoryChip chip(16);
  EccScrubAccess m(chip);
  m.write(2, 0xFEED);
  chip.inject_bit_flip(2, 7);
  const ReadResult r = m.read(2);
  EXPECT_EQ(r.status, ReadStatus::kCorrected);
  EXPECT_EQ(r.value, 0xFEEDu);
  // Demand scrubbing repaired the stored word: next read is clean.
  EXPECT_EQ(m.read(2).status, ReadStatus::kOk);
  EXPECT_EQ(m.stats().corrected_singles, 1u);
}

TEST(EccScrubTest, DetectsDoubleBitFlip) {
  MemoryChip chip(16);
  EccScrubAccess m(chip);
  m.write(0, 0x1111);
  chip.inject_bit_flip(0, 3);
  chip.inject_bit_flip(0, 40);
  const ReadResult r = m.read(0);
  EXPECT_EQ(r.status, ReadStatus::kUncorrectable);
  EXPECT_EQ(m.stats().double_detected, 1u);
  EXPECT_EQ(m.stats().data_losses, 1u);
}

TEST(EccScrubTest, ScrubRepairsLatentFlipsBeforeTheyAccumulate) {
  MemoryChip chip(8);
  EccScrubAccess m(chip, /*words_per_scrub_step=*/8);
  for (std::size_t a = 0; a < 8; ++a) m.write(a, a * 1000);
  for (std::size_t a = 0; a < 8; ++a) chip.inject_bit_flip(a, 11);
  m.scrub_step();  // walks all 8 words
  EXPECT_EQ(m.stats().corrected_singles, 8u);
  // A second flip in each word would have been fatal without the scrub.
  for (std::size_t a = 0; a < 8; ++a) chip.inject_bit_flip(a, 30);
  for (std::size_t a = 0; a < 8; ++a) {
    const ReadResult r = m.read(a);
    EXPECT_TRUE(r.ok());
    EXPECT_EQ(r.value, a * 1000);
  }
}

TEST(EccScrubTest, UnavailableDuringScrubIsHarmless) {
  MemoryChip chip(8);
  EccScrubAccess m(chip);
  chip.inject_sefi();
  m.scrub_step();  // must not crash or spin
  EXPECT_EQ(m.read(0).status, ReadStatus::kUnavailable);
}

// --- M2 ECC + remap ---------------------------------------------------------------

TEST(EccRemapTest, SpareFractionValidation) {
  MemoryChip chip(16);
  EXPECT_THROW(EccRemapAccess(chip, 0.0), std::invalid_argument);
  EXPECT_THROW(EccRemapAccess(chip, 1.0), std::invalid_argument);
}

TEST(EccRemapTest, CapacityExcludesSpares) {
  MemoryChip chip(64);
  EccRemapAccess m(chip, 0.25);
  EXPECT_EQ(m.capacity_words(), 48u);
  EXPECT_EQ(m.spares_left(), 16u);
  EXPECT_THROW((void)m.read(48), std::out_of_range);
}

TEST(EccRemapTest, StuckCellGetsRetiredOnWrite) {
  MemoryChip chip(64);
  EccRemapAccess m(chip, 0.125);
  // Make logical word 5's physical cell permanently stuck.
  chip.inject_stuck_at(5, 20, true);
  // Write a value whose codeword has bit 20 clear -> the write will not
  // stick -> remap must kick in and the read must still return the value.
  m.write(5, 0);
  EXPECT_EQ(m.stats().remaps, 1u);
  const ReadResult r = m.read(5);
  EXPECT_TRUE(r.ok());
  EXPECT_EQ(r.value, 0u);
}

TEST(EccRemapTest, StuckCellDiscoveredOnReadIsRetired) {
  MemoryChip chip(64);
  EccRemapAccess m(chip, 0.125);
  m.write(7, 0);  // codeword all-zero
  chip.inject_stuck_at(7, 33, true);  // now bit 33 reads as 1: single error
  const ReadResult r = m.read(7);
  EXPECT_EQ(r.status, ReadStatus::kCorrected);
  EXPECT_EQ(r.value, 0u);
  EXPECT_EQ(m.stats().remaps, 1u);
  // After retirement the stored copy is on a healthy spare: clean reads.
  EXPECT_EQ(m.read(7).status, ReadStatus::kOk);
}

TEST(EccRemapTest, ManyStuckCellsUntilSparesExhaust) {
  MemoryChip chip(32);
  EccRemapAccess m(chip, 0.125);  // 4 spares
  ASSERT_EQ(m.spares_left(), 4u);
  for (std::size_t a = 0; a < 5; ++a) {
    chip.inject_stuck_at(a, 10, true);
    m.write(a, 0);
  }
  EXPECT_EQ(m.spares_left(), 0u);
  EXPECT_LE(m.stats().remaps, 5u);
  // The un-remapped word still limps along via per-read ECC correction.
  for (std::size_t a = 0; a < 5; ++a) {
    EXPECT_TRUE(m.read(a).ok());
  }
}

TEST(EccRemapTest, ScrubAlsoTriggersRetirement) {
  MemoryChip chip(64);
  EccRemapAccess m(chip, 0.125, /*words_per_scrub_step=*/56);
  m.write(9, 0);
  chip.inject_stuck_at(9, 12, true);
  m.scrub_step();
  EXPECT_EQ(m.stats().remaps, 1u);
  EXPECT_EQ(m.read(9).status, ReadStatus::kOk);
}

// --- M3 SEL mirror ------------------------------------------------------------------

TEST(SelMirrorTest, DistinctDevicesRequired) {
  MemoryChip chip(8);
  EXPECT_THROW(SelMirrorAccess(chip, chip), std::invalid_argument);
}

TEST(SelMirrorTest, SurvivesPrimaryLatchUp) {
  MemoryChip a(32), b(32);
  SelMirrorAccess m(a, b);
  for (std::size_t w = 0; w < 32; ++w) m.write(w, w * 7);
  a.inject_latch_up();
  // First read after SEL: device recovered from mirror, data intact.
  const ReadResult r = m.read(5);
  EXPECT_TRUE(r.ok());
  EXPECT_EQ(r.value, 35u);
  EXPECT_EQ(a.state(), ChipState::kOperational);
  EXPECT_GE(m.stats().power_cycles, 1u);
  EXPECT_GE(m.stats().rebuilds, 1u);
  // Everything is intact after the rebuild.
  for (std::size_t w = 0; w < 32; ++w) {
    const ReadResult rr = m.read(w);
    ASSERT_TRUE(rr.ok());
    ASSERT_EQ(rr.value, w * 7);
  }
}

TEST(SelMirrorTest, SurvivesMirrorLatchUpViaScrub) {
  MemoryChip a(16), b(16);
  SelMirrorAccess m(a, b, /*words_per_scrub_step=*/16);
  for (std::size_t w = 0; w < 16; ++w) m.write(w, w);
  b.inject_latch_up();
  // Reads are served by the healthy primary; scrubbing discovers and
  // repairs the dead mirror.
  EXPECT_TRUE(m.read(3).ok());
  m.scrub_step();
  // Fail the primary now: data must come back from the rebuilt mirror.
  a.inject_latch_up();
  const ReadResult r = m.read(3);
  EXPECT_TRUE(r.ok());
  EXPECT_EQ(r.value, 3u);
}

TEST(SelMirrorTest, DoubleErrorOnPrimaryRecoveredFromMirror) {
  MemoryChip a(16), b(16);
  SelMirrorAccess m(a, b);
  m.write(0, 0x77);
  a.inject_bit_flip(0, 1);
  a.inject_bit_flip(0, 2);
  const ReadResult r = m.read(0);
  EXPECT_EQ(r.status, ReadStatus::kRecovered);
  EXPECT_EQ(r.value, 0x77u);
  // Primary was repaired in place.
  EXPECT_EQ(m.read(0).status, ReadStatus::kOk);
}

TEST(SelMirrorTest, SimultaneousDoubleDeviceLossIsReported) {
  MemoryChip a(8), b(8);
  SelMirrorAccess m(a, b);
  m.write(0, 9);
  a.inject_latch_up();
  b.inject_latch_up();
  const ReadResult r = m.read(0);
  EXPECT_EQ(r.status, ReadStatus::kUnavailable);
  EXPECT_GE(m.stats().data_losses, 1u);
  // Both devices were power-cycled so future writes are durable again.
  EXPECT_TRUE(m.write(0, 10));
  EXPECT_TRUE(m.read(0).ok());
}

TEST(SelMirrorTest, SingleBitFlipsCorrectedPerDevice) {
  MemoryChip a(8), b(8);
  SelMirrorAccess m(a, b);
  m.write(1, 0x42);
  a.inject_bit_flip(1, 9);
  EXPECT_EQ(m.read(1).status, ReadStatus::kCorrected);
  EXPECT_EQ(m.read(1).status, ReadStatus::kOk);  // repaired
}

// --- M4 TMR + ECC -------------------------------------------------------------------

TEST(TmrTest, DistinctDevicesRequired) {
  MemoryChip a(8), b(8);
  EXPECT_THROW(TmrEccAccess(a, a, b), std::invalid_argument);
}

TEST(TmrTest, RoundTripAndToleratesEverything) {
  MemoryChip a(16), b(16), c(16);
  TmrEccAccess m(a, b, c);
  m.write(0, 123);
  EXPECT_EQ(m.read(0).value, 123u);
  for (auto f : {FailureSemantics::kF0Stable, FailureSemantics::kF1TransientCmos,
                 FailureSemantics::kF2StuckAtCmos, FailureSemantics::kF3SdramSel,
                 FailureSemantics::kF4SdramSelSeu}) {
    EXPECT_TRUE(m.tolerates(f));
  }
}

TEST(TmrTest, OutvotesAWholeCorruptedCopy) {
  MemoryChip a(16), b(16), c(16);
  TmrEccAccess m(a, b, c);
  m.write(2, 0x5A5A);
  // Corrupt copy a beyond ECC (double flip): voting must mask it.
  a.inject_bit_flip(2, 0);
  a.inject_bit_flip(2, 1);
  const ReadResult r = m.read(2);
  EXPECT_TRUE(r.ok());
  EXPECT_EQ(r.value, 0x5A5Au);
  // Repair pass rewrote copy a: subsequent read is fully clean.
  EXPECT_EQ(m.read(2).status, ReadStatus::kOk);
}

TEST(TmrTest, SurvivesLatchUpConcurrentWithSeu) {
  MemoryChip a(16), b(16), c(16);
  TmrEccAccess m(a, b, c);
  for (std::size_t w = 0; w < 16; ++w) m.write(w, w + 100);
  a.inject_latch_up();          // whole device gone
  b.inject_bit_flip(4, 17);     // SEU on a survivor at the word we read
  const ReadResult r = m.read(4);
  EXPECT_TRUE(r.ok());
  EXPECT_EQ(r.value, 104u);
  EXPECT_EQ(a.state(), ChipState::kOperational);  // rebuilt
  for (std::size_t w = 0; w < 16; ++w) {
    ASSERT_EQ(m.read(w).value, w + 100);
  }
}

TEST(TmrTest, SurvivesSequentialLossOfEachDevice) {
  MemoryChip a(8), b(8), c(8);
  TmrEccAccess m(a, b, c);
  m.write(0, 77);
  for (MemoryChip* victim : {&a, &b, &c}) {
    victim->inject_latch_up();
    const ReadResult r = m.read(0);
    ASSERT_TRUE(r.ok());
    ASSERT_EQ(r.value, 77u);
  }
}

TEST(TmrTest, TotalLossIsReportedNotInvented) {
  MemoryChip a(8), b(8), c(8);
  TmrEccAccess m(a, b, c);
  m.write(0, 1);
  a.inject_latch_up();
  b.inject_latch_up();
  c.inject_latch_up();
  const ReadResult r = m.read(0);
  EXPECT_FALSE(r.ok());
  EXPECT_GE(m.stats().data_losses, 1u);
}

TEST(TmrTest, SefiDeviceIsPowerCycledAndRebuilt) {
  MemoryChip a(8), b(8), c(8);
  TmrEccAccess m(a, b, c);
  m.write(3, 33);
  c.inject_sefi();
  const ReadResult r = m.read(3);
  EXPECT_TRUE(r.ok());
  EXPECT_EQ(c.state(), ChipState::kOperational);
  EXPECT_EQ(m.read(3).value, 33u);
}

TEST(TmrTest, ScrubRepairsDivergence) {
  MemoryChip a(8), b(8), c(8);
  TmrEccAccess m(a, b, c, /*words_per_scrub_step=*/8);
  for (std::size_t w = 0; w < 8; ++w) m.write(w, w);
  for (std::size_t w = 0; w < 8; ++w) {
    a.inject_bit_flip(w, 2);
    a.inject_bit_flip(w, 3);
  }
  m.scrub_step();
  // After scrubbing, copy a agrees again: direct device comparison.
  for (std::size_t w = 0; w < 8; ++w) {
    EXPECT_EQ(a.read(w).word, b.read(w).word);
  }
}

// --- Statistical adequacy campaign -------------------------------------------------
//
// Run each method over a chip (set) driven by each canonical fault profile
// and verify: adequate methods never lose data; inadequate pairings do (for
// profiles aggressive enough to show it within the campaign length).

struct Campaign {
  std::string method;
  FailureSemantics semantics;
  bool expect_integrity;
};

class AdequacyTest : public ::testing::TestWithParam<Campaign> {};

TEST_P(AdequacyTest, MethodVsProfile) {
  const Campaign& c = GetParam();

  MemoryChip chip0(256), chip1(256), chip2(256);
  std::unique_ptr<IMemoryAccessMethod> method;
  if (c.method == "M1") method = std::make_unique<EccScrubAccess>(chip0, 256);
  if (c.method == "M2") method = std::make_unique<EccRemapAccess>(chip0, 0.125, 224);
  if (c.method == "M3") method = std::make_unique<SelMirrorAccess>(chip0, chip1, 256);
  if (c.method == "M4") method = std::make_unique<TmrEccAccess>(chip0, chip1, chip2, 256);
  ASSERT_NE(method, nullptr);

  aft::hw::FaultProfile profile;
  switch (c.semantics) {
    case FailureSemantics::kF0Stable: profile = aft::hw::profiles::stable(); break;
    case FailureSemantics::kF1TransientCmos:
      profile = aft::hw::profiles::cmos();
      profile.seu_rate = 2e-3;  // accelerated campaign
      break;
    case FailureSemantics::kF2StuckAtCmos:
      profile = aft::hw::profiles::cmos_aging();
      profile.seu_rate = 2e-3;
      profile.stuck_rate = 5e-4;
      break;
    case FailureSemantics::kF3SdramSel:
      profile = aft::hw::profiles::sdram_sel();
      profile.seu_rate = 2e-3;
      profile.sel_rate = 1e-3;
      break;
    case FailureSemantics::kF4SdramSelSeu:
      profile = aft::hw::profiles::sdram_sel_seu();
      profile.seu_rate = 5e-3;
      profile.sel_rate = 1e-3;
      profile.sefi_rate = 5e-4;
      break;
  }

  std::vector<aft::hw::FaultInjector> injectors;
  injectors.emplace_back(chip0, profile, 101);
  if (c.method == "M3" || c.method == "M4") injectors.emplace_back(chip1, profile, 202);
  if (c.method == "M4") injectors.emplace_back(chip2, profile, 303);

  const std::size_t n = method->capacity_words();
  for (std::size_t w = 0; w < n; ++w) method->write(w, w * 31 + 5);

  Xoshiro256 rng(999);
  std::uint64_t wrong_or_lost = 0;
  for (int step = 0; step < 20000; ++step) {
    for (auto& inj : injectors) inj.tick();
    if (step % 4 == 0) method->scrub_step();
    const std::size_t addr = static_cast<std::size_t>(rng.uniform_int(0, n - 1));
    const ReadResult r = method->read(addr);
    if (!r.ok() || r.value != addr * 31 + 5) {
      ++wrong_or_lost;
      method->write(addr, addr * 31 + 5);  // re-seed so errors don't cascade
    }
  }

  if (c.expect_integrity) {
    EXPECT_EQ(wrong_or_lost, 0u)
        << c.method << " under " << to_string(c.semantics);
  } else {
    EXPECT_GT(wrong_or_lost, 0u)
        << c.method << " under " << to_string(c.semantics)
        << " was expected to lose data in this campaign";
  }
}

INSTANTIATE_TEST_SUITE_P(
    MethodProfileMatrix, AdequacyTest,
    ::testing::Values(
        // Designed-for pairings: integrity must hold.
        Campaign{"M1", FailureSemantics::kF1TransientCmos, true},
        Campaign{"M2", FailureSemantics::kF2StuckAtCmos, true},
        Campaign{"M3", FailureSemantics::kF3SdramSel, true},
        Campaign{"M4", FailureSemantics::kF4SdramSelSeu, true},
        Campaign{"M4", FailureSemantics::kF3SdramSel, true},
        Campaign{"M4", FailureSemantics::kF1TransientCmos, true},
        // Clash pairings: the weaker method must visibly fail.
        Campaign{"M1", FailureSemantics::kF3SdramSel, false},
        Campaign{"M2", FailureSemantics::kF3SdramSel, false},
        Campaign{"M1", FailureSemantics::kF4SdramSelSeu, false}),
    [](const ::testing::TestParamInfo<Campaign>& param_info) {
      return param_info.param.method + "_" +
             to_string(param_info.param.semantics) +
             (param_info.param.expect_integrity ? "_holds" : "_clashes");
    });

// --- ScrubberDaemon ----------------------------------------------------------

TEST(ScrubberDaemonTest, RunsOnePassPerPeriod) {
  aft::sim::Simulator sim;
  aft::hw::MemoryChip chip(16);
  aft::mem::EccScrubAccess method(chip, 16);
  aft::mem::ScrubberDaemon scrubber(sim, method, /*period=*/10);
  scrubber.start();
  sim.run_until(100);
  EXPECT_EQ(scrubber.passes(), 10u);
  scrubber.stop();
  sim.run_until(200);
  EXPECT_EQ(scrubber.passes(), 10u);
}

// --- Scrub-cursor edge cases --------------------------------------------------
// Regressions for the hardening sweep: before it, (a) a scrub cursor left
// beyond the end of a shrunk chip faulted the next step with out_of_range
// (the `== words` wrap never fires for a cursor already past the end), and
// (b) the mirror rebuild / remap spare-resolution paths walked stale extents
// into the same fault.  words_per_scrub_step == 0 must be an exact no-op.

TEST(EccScrubTest, ZeroStepScrubIsANoOp) {
  MemoryChip chip(16);
  EccScrubAccess m(chip, /*words_per_scrub_step=*/0);
  m.write(0, 0x1);
  chip.inject_bit_flip(0, 4);
  const auto reads_before = chip.reads();
  m.scrub_step();  // must not spin, divide, or touch the device
  EXPECT_EQ(chip.reads(), reads_before);
  EXPECT_EQ(m.stats().corrected_singles, 0u);
}

TEST(EccScrubTest, CursorWrapsWhenStepDoesNotDivideWordCount) {
  // 10 words, 7-word steps: the walk must cover addresses 7..9 AND wrap to
  // 0..3 on the second call, with no address skipped across the seam.
  MemoryChip chip(10);
  EccScrubAccess m(chip, 7);
  for (std::size_t w = 0; w < 10; ++w) m.write(w, w);
  chip.inject_bit_flip(9, 2);   // just before the wrap seam
  chip.inject_bit_flip(0, 60);  // just after it
  m.scrub_step();  // covers 0..6 (corrects addr 0)
  EXPECT_EQ(m.stats().corrected_singles, 1u);
  m.scrub_step();  // covers 7..9 then wraps to 0..3 (corrects addr 9)
  EXPECT_EQ(m.stats().corrected_singles, 2u);
  for (std::size_t w = 0; w < 10; ++w) {
    EXPECT_EQ(m.read(w).status, ReadStatus::kOk) << "addr " << w;
  }
}

TEST(EccScrubTest, StepLargerThanChipRescrubsWithoutFaulting) {
  MemoryChip chip(6);
  EccScrubAccess m(chip, 50);  // several full passes in one step
  for (std::size_t w = 0; w < 6; ++w) m.write(w, w);
  chip.inject_bit_flip(3, 1);
  m.scrub_step();
  EXPECT_EQ(m.stats().corrected_singles, 1u);
  EXPECT_EQ(m.read(3).status, ReadStatus::kOk);
}

TEST(EccScrubTest, ScrubSurvivesChipShrinkResize) {
  MemoryChip chip(128);
  EccScrubAccess m(chip, 100);
  for (std::size_t w = 0; w < 128; ++w) m.write(w, w);
  m.scrub_step();  // cursor now at 100
  chip.resize(32);  // hot swap: cursor 100 is now past the end
  EXPECT_NO_THROW(m.scrub_step());  // failing-before: out_of_range at addr 100
  // The scrub is live again on the replacement part.
  m.write(5, 0x5);
  chip.inject_bit_flip(5, 11);
  m.scrub_step();
  EXPECT_EQ(m.read(5).status, ReadStatus::kOk);
}

TEST(SelMirrorTest, ZeroStepScrubStillRecoversDevices) {
  // Step 0 suppresses the word walk but NOT the device-level health check —
  // that is the latch-up current sensor analogue and must keep running.
  MemoryChip a(8);
  MemoryChip b(8);
  SelMirrorAccess m(a, b, /*words_per_scrub_step=*/0);
  m.write(1, 0xBEEF);
  b.inject_latch_up();
  EXPECT_NO_THROW(m.scrub_step());
  EXPECT_EQ(b.state(), ChipState::kOperational);  // recovered from a
  EXPECT_EQ(m.read(1).value, 0xBEEFu);
}

TEST(SelMirrorTest, ScrubSurvivesChipShrinkResize) {
  MemoryChip a(64);
  MemoryChip b(64);
  SelMirrorAccess m(a, b, 50);
  for (std::size_t w = 0; w < 64; ++w) m.write(w, w);
  m.scrub_step();  // cursor at 50
  a.resize(16);    // shrink the primary: mirrored extent is now 16
  EXPECT_NO_THROW(m.scrub_step());  // failing-before: walked a_ at addr >= 16
  EXPECT_EQ(m.capacity_words(), 16u);
  // A device loss after the shrink must rebuild with the clamped extent.
  b.inject_latch_up();
  EXPECT_NO_THROW(m.scrub_step());  // failing-before: rebuild copied 64 words
  EXPECT_EQ(b.state(), ChipState::kOperational);
}

TEST(EccRemapTest, ZeroStepScrubIsANoOp) {
  MemoryChip chip(32);
  EccRemapAccess m(chip, 0.25, /*words_per_scrub_step=*/0);
  m.write(0, 1);
  const auto reads_before = chip.reads();
  m.scrub_step();
  EXPECT_EQ(chip.reads(), reads_before);
}

TEST(EccRemapTest, ScrubSurvivesChipShrinkResize) {
  MemoryChip chip(128);  // spare fraction 0.25 -> 96 logical words
  EccRemapAccess m(chip, 0.25, 90);
  for (std::size_t w = 0; w < m.capacity_words(); ++w) m.write(w, w);
  // Force a remap so some logical word resolves into the spare region that
  // is about to vanish (stuck value chosen to guarantee a write mismatch).
  const Word72 cw = ecc_encode(0xAA);
  chip.inject_stuck_at(10, 3, !aft::hw::get_bit(cw, 3));
  m.write(10, 0xAA);
  ASSERT_GE(m.stats().remaps, 1u);
  m.scrub_step();   // cursor at 90
  chip.resize(32);  // logical extent (96) and the spare target both stale
  // failing-before: out_of_range either at the stale cursor or when the
  // walk resolved logical 10 to its (now nonexistent) spare address.
  EXPECT_NO_THROW(m.scrub_step());
  EXPECT_NO_THROW(m.scrub_step());
}

TEST(ScrubberDaemonTest, RestartRunsASingleChain) {
  // stop() is lazy: the next pass stays scheduled and self-cancels when it
  // fires.  A start() before it fired used to chain a SECOND pass loop, so
  // every stop/start cycle (e.g. an adaptation changing cadence) silently
  // doubled the scrub bandwidth.  The epoch guard keeps it at one chain.
  aft::sim::Simulator sim;
  aft::hw::MemoryChip chip(16);
  aft::mem::EccScrubAccess method(chip, 16);
  aft::mem::ScrubberDaemon scrubber(sim, method, /*period=*/10);
  scrubber.start();  // pass pending at t=10
  sim.run_until(5);
  scrubber.stop();
  scrubber.start();  // fresh chain: passes at 15, 25, 35, ...
  sim.run_until(105);  // exactly 10 fresh periods
  EXPECT_EQ(scrubber.passes(), 10u);
}

}  // namespace
