// Steady-state allocation audits.  This binary overrides the global
// operator new/delete with counting versions (tests/CMakeLists.txt builds
// one executable per test file, so the override is confined to this TU's
// process) and asserts the hot loops the perf PRs optimise are genuinely
// allocation-free once warm:
//
//   * sim::Simulator schedule/dispatch with in-tree-shaped continuations
//     (the InlineFn + DHeap kernel),
//   * arch::EventBus publish and publish_batch over interned topics,
//     plus MessageArena slot recycling,
//   * net::Link frame send -> deliver through the recycled slot pool,
//   * vote::VotingFarm::invoke round after round, including after an
//     arity resize, and
//   * mem::EccScrubAccess batched patrol scrub (read_block + bit-sliced
//     batch decode), including rounds that take the repair path.
#include <gtest/gtest.h>

#include <cstddef>
#include <cstdint>
#include <cstdlib>
#include <new>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "arch/event_bus.hpp"
#include "cluster/replica.hpp"
#include "hw/memory_chip.hpp"
#include "load/traffic.hpp"
#include "mem/method_ecc.hpp"
#include "net/link.hpp"
#include "obs/metrics.hpp"
#include "sim/simulator.hpp"
#include "vote/voting_farm.hpp"

namespace {
std::uint64_t g_news = 0;  // single-threaded tests; plain counter suffices
}  // namespace

void* operator new(std::size_t size) {
  ++g_news;
  if (size == 0) size = 1;
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}

void* operator new[](std::size_t size) { return ::operator new(size); }

void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace {

/// Counts global operator-new calls made by `body()`.
template <typename Body>
std::uint64_t allocations_during(Body&& body) {
  const std::uint64_t before = g_news;
  body();
  return g_news - before;
}

TEST(AllocTest, CountingHookIsLive) {
  // Sanity: the override actually intercepts allocations in this binary.
  // A plain new-expression won't do — the optimizer may elide it — but a
  // direct operator-new call and a capacity-forcing vector may not be.
  const std::uint64_t n = allocations_during([] {
    void* p = ::operator new(32);
    ::operator delete(p);
    std::vector<int> v;
    v.reserve(1000);
    v.push_back(1);
  });
  EXPECT_GE(n, 2u);
}

TEST(AllocTest, SimulatorSteadyStateIsAllocationFree) {
  aft::sim::Simulator sim;
  std::uint64_t fired = 0;

  // Warm-up: grow the queue's backing storage past the working set.
  for (int i = 0; i < 256; ++i) {
    sim.schedule_in(static_cast<aft::sim::SimTime>(i % 17),
                    [&fired] { ++fired; });
  }
  sim.run_all();

  // Steady state: schedule and dispatch with a capture the size of the
  // widest in-tree continuation (heartbeat: this + std::string + epoch =
  // 48 bytes).  A short string stays in its SSO buffer, so the whole shape
  // is allocation-free end to end.
  struct Shape {
    std::uint64_t* fired;
    std::string channel;
    std::uint64_t epoch;
    void operator()() const { ++*fired; }
  };
  static_assert(aft::sim::Simulator::fits_inline<Shape>);
  const std::uint64_t allocs = allocations_during([&] {
    for (std::uint64_t round = 0; round < 1000; ++round) {
      for (int i = 0; i < 64; ++i) {
        sim.schedule_in(static_cast<aft::sim::SimTime>(i % 5),
                        Shape{&fired, "svc", round});
      }
      sim.run_all();
    }
  });
  EXPECT_EQ(allocs, 0u);
  EXPECT_EQ(fired, 256u + 1000u * 64u);
}

TEST(AllocTest, SelfReschedulingDaemonMeshIsAllocationFree) {
  // The fig6/fig7 shape: periodic daemons that re-arm themselves from
  // inside their own dispatch.  Re-arming pushes while the heap is at its
  // high-water mark, so after one warm cycle no growth can occur.
  aft::sim::Simulator sim;
  struct Daemon {
    aft::sim::Simulator* sim;
    aft::sim::SimTime period;
    std::uint64_t fires = 0;
    void arm() {
      auto chain = [this] {
        ++fires;
        arm();
      };
      static_assert(aft::sim::Simulator::fits_inline<decltype(chain)>);
      sim->schedule_in(period, std::move(chain));
    }
  };
  std::vector<Daemon> mesh;
  mesh.reserve(32);
  for (std::uint64_t d = 0; d < 32; ++d) {
    mesh.push_back(Daemon{&sim, 1 + d % 7, 0});
    mesh.back().arm();
  }
  sim.run_until(100);  // warm-up: queue reaches its steady high-water mark

  const std::uint64_t allocs =
      allocations_during([&] { sim.run_until(10'000); });
  EXPECT_EQ(allocs, 0u);
  std::uint64_t total = 0;
  for (const Daemon& d : mesh) total += d.fires;
  EXPECT_GT(total, 32u * 1000u);
}

TEST(AllocTest, EventBusPublishSteadyStateIsAllocationFree) {
  // The interned SoA bus: once topics are interned and buckets sized, a
  // publish is an array walk — no string-keyed map lookup materializes
  // nodes, no handler snapshot vector, no std::function copies.
  aft::arch::EventBus bus;
  std::uint64_t delivered = 0;
  for (int s = 0; s < 4; ++s) {
    bus.subscribe("mesh", [&delivered](const aft::arch::Message&) {
      ++delivered;
    });
  }
  bus.subscribe_all([&delivered](const aft::arch::Message&) { ++delivered; });
  const aft::arch::Message msg{"mesh", "src", "beat"};
  bus.publish(msg);  // warm-up

  const aft::arch::TopicId topic = bus.find_topic("mesh");
  const std::uint64_t allocs = allocations_during([&] {
    for (int i = 0; i < 10000; ++i) bus.publish(msg);
    for (int i = 0; i < 10000; ++i) bus.publish(topic, msg);
  });
  EXPECT_EQ(allocs, 0u);
  EXPECT_EQ(delivered, 5u * 20001u);
}

TEST(AllocTest, EventBusPublishBatchIsAllocationFree) {
  aft::arch::EventBus bus;
  std::uint64_t delivered = 0;
  bus.subscribe("mesh", [&delivered](const aft::arch::Message&) {
    ++delivered;
  });
  std::vector<aft::arch::Message> batch(64);
  for (auto& m : batch) m = aft::arch::Message{"mesh", "src", "beat"};
  const aft::arch::TopicId topic = bus.find_topic("mesh");
  bus.publish_batch(topic, std::span<const aft::arch::Message>(batch));

  const std::uint64_t allocs = allocations_during([&] {
    for (int i = 0; i < 1000; ++i) {
      bus.publish_batch(topic, std::span<const aft::arch::Message>(batch));
    }
  });
  EXPECT_EQ(allocs, 0u);
  EXPECT_EQ(delivered, 64u * 1001u);
}

TEST(AllocTest, MessageArenaRecycledSlotsKeepStringCapacity) {
  aft::arch::MessageArena arena;
  const std::string long_payload(100, 'x');  // far past any SSO buffer

  // Warm-up: one acquire/fill/release cycle grows the slot's strings.
  {
    const auto slot = arena.acquire();
    arena[slot].topic = "mesh";
    arena[slot].payload = long_payload;
    arena.release(slot);
  }

  const std::uint64_t allocs = allocations_during([&] {
    for (int i = 0; i < 1000; ++i) {
      const auto slot = arena.acquire();
      arena[slot].topic = "mesh";
      arena[slot].payload = long_payload;  // fits the retained capacity
      arena.release(slot);
    }
  });
  EXPECT_EQ(allocs, 0u);
  EXPECT_EQ(arena.capacity(), 1u);
}

TEST(AllocTest, LinkFrameSendSteadyStateIsAllocationFree) {
  // One send parks the frame in a recycled pool slot and schedules an
  // inline delivery continuation; with SSO-sized strings the whole
  // send -> deliver -> receiver path must not touch the allocator.
  aft::sim::Simulator sim;
  aft::net::Link link(sim, "a->b", aft::net::LinkFaults{}, 77);
  std::uint64_t received = 0;
  link.set_receiver([&received](aft::net::Frame&&) { ++received; });

  aft::net::Frame frame;
  frame.kind = aft::net::FrameKind::kHeartbeat;
  frame.method = "beat";
  frame.origin = "node-a";
  link.send(frame);  // warm-up: pool + queue growth
  sim.run_all();

  const std::uint64_t allocs = allocations_during([&] {
    for (int i = 0; i < 5000; ++i) {
      frame.id = static_cast<std::uint64_t>(i);
      link.send(frame);
      sim.run_all();
    }
  });
  EXPECT_EQ(allocs, 0u);
  EXPECT_EQ(received, 5001u);
}

TEST(AllocTest, VotingFarmSteadyStateIsAllocationFree) {
  aft::vote::VotingFarm farm(
      7, [](aft::vote::Ballot input, std::size_t replica) {
        // One dissenter per round keeps the vote non-trivial.
        return replica == 3 ? input + 1 : input;
      });
  (void)farm.invoke(0);  // warm-up sizes ballots_ and scratch_

  const std::uint64_t allocs = allocations_during([&] {
    for (aft::vote::Ballot round = 1; round <= 2000; ++round) {
      const aft::vote::RoundReport report = farm.invoke(round);
      ASSERT_TRUE(report.success);
      ASSERT_EQ(report.value, round);
    }
  });
  EXPECT_EQ(allocs, 0u);
  EXPECT_EQ(farm.last_ballots().size(), 7u);
}

TEST(AllocTest, VotingFarmStaysAllocationFreeAfterResizeDown) {
  aft::vote::VotingFarm farm(
      9, [](aft::vote::Ballot input, std::size_t) { return input; });
  (void)farm.invoke(0);
  farm.resize(5);  // shrink: both buffers keep their 9-slot capacity

  const std::uint64_t allocs = allocations_during([&] {
    for (aft::vote::Ballot round = 1; round <= 500; ++round) {
      const aft::vote::RoundReport report = farm.invoke(round);
      ASSERT_TRUE(report.success);
      ASSERT_EQ(report.n, 5u);
    }
  });
  EXPECT_EQ(allocs, 0u);
  EXPECT_EQ(farm.last_ballots().size(), 5u);
}

TEST(AllocTest, MetricsObserveSteadyStateIsAllocationFree) {
  // The PR-8 quantile plane: feeding a pre-registered histogram-backed
  // stat is a Welford update plus a LogHistogram bucket increment — no
  // node materialization, no string temporaries (the registry's maps are
  // std::less<> keyed, so string_view lookups stay heterogeneous).
  aft::obs::MetricsRegistry reg;
  aft::obs::Stat& lat = reg.stat("net.rpc.latency.ok");  // hoisted handle

  const std::uint64_t allocs = allocations_during([&] {
    for (std::uint64_t i = 0; i < 100'000; ++i) {
      lat.add(static_cast<double>(1 + i % 4096));
      if (i % 16 == 0) reg.observe("net.rpc.latency.ok", 7.0);  // by name
    }
  });
  EXPECT_EQ(allocs, 0u);
  EXPECT_EQ(lat.count(), 100'000u + 100'000u / 16u);
}

TEST(AllocTest, TimelineRolloverIsAllocationFree) {
  // Rolling the live window into the finalized store compresses the
  // non-zero bucket range into the arena; after reserve() both the window
  // vector and the arena are pre-sized, so steady-state rollover (the
  // per-window path a long campaign run exercises thousands of times)
  // never touches the heap.
  aft::obs::MetricsRegistry reg;
  aft::obs::Timeline& tl = reg.timeline("lat", /*window_ticks=*/10);
  // Bounded-magnitude samples (1..63) span at most two majors' worth of
  // buckets; 96 per-window bucket slots is comfortably enough.
  tl.reserve(/*windows=*/1200, /*buckets_per_window=*/96);
  aft::obs::Stat& lat = reg.stat("lat");

  const std::uint64_t allocs = allocations_during([&] {
    for (std::uint64_t t = 0; t < 10'000; ++t) {
      reg.set_time(t);
      lat.add(static_cast<double>(1 + (t * 7) % 63));
    }
  });
  EXPECT_EQ(allocs, 0u);
  EXPECT_FALSE(tl.empty());
  // Every window rolled: 1000 finalized + the live one.
  EXPECT_EQ(tl.snapshot().size(), 1000u);
}

TEST(AllocTest, BatchScrubSteadyStateIsAllocationFree) {
  // The batched EccScrubAccess::scrub_step (read_block + bit-sliced
  // ecc_decode_batch + targeted write-backs) works entirely out of stack
  // buffers: once the chip exists, patrol scrubbing — including passes that
  // actually correct injected flips through the repair path — must never
  // touch the heap.
  aft::hw::MemoryChip chip(1024);
  aft::mem::EccScrubAccess method(chip, /*words_per_scrub_step=*/700);
  for (std::size_t w = 0; w < 1024; ++w) method.write(w, w * 0x9E3779B97F4A7C15ULL);
  chip.inject_bit_flip(3, 7);
  method.scrub_step();  // warm (also proves the repair write-back path runs)
  ASSERT_GE(method.stats().corrected_singles, 1u);

  const std::uint64_t allocs = allocations_during([&] {
    for (unsigned round = 0; round < 200; ++round) {
      // Fresh latent flips each round keep the dirty-block repair path hot;
      // step 700 on 1024 words also exercises the wrap seam repeatedly.
      chip.inject_bit_flip((round * 37u) % 1024u, round % 72u);
      method.scrub_step();
    }
  });
  EXPECT_EQ(allocs, 0u);
  EXPECT_GE(method.stats().corrected_singles, 150u);  // most rounds corrected
}

TEST(AllocTest, OpenLoopTrafficSteadyStateIsAllocationFree) {
  // The whole arrival -> RPC -> vote-round -> completion loop of the
  // open-system traffic plane, including the admission shed path: once the
  // pools (session slots, endpoint call tables, the invoke ring, message
  // arenas) reach their high-water marks, a million-client campaign run
  // costs zero heap traffic per request.
  aft::sim::Simulator sim;
  sim.reserve(512);  // peak backlog is a few dozen; 512 is comfortable slack
  aft::cluster::ClusterParams params;
  params.pool = 5;
  params.wire.to_replica.latency = 2;
  params.wire.to_replica.jitter = 1;
  params.wire.from_replica.latency = 2;
  params.wire.from_replica.jitter = 1;
  params.policy.min_replicas = 3;
  params.policy.max_replicas = 5;
  params.policy.step = 2;
  params.policy.lower_after = 1u << 20;
  params.call.deadline = 15;
  params.call.retry.max_attempts = 2;
  params.call.retry.initial_backoff = 4;
  params.call.retry.max_backoff = 8;
  params.heartbeat_period = 4;
  params.membership.deadline = 10;
  params.admission.queue_limit = 8;
  params.admission.policy = aft::cluster::ShedPolicy::kRejectNewest;
  aft::cluster::ReplicatedService service(
      sim, params,
      [](aft::vote::Ballot input, std::size_t) { return input * 2 + 1; }, 21);

  aft::load::TrafficParams tp;
  tp.clients = 4000;
  tp.warm_gap = 8.0;
  tp.overload_gap = 2.0;
  tp.recovery_gap = 8.0;
  tp.think_mean = 6.0;
  tp.session_cap = 16;
  tp.call.deadline = 2000;
  tp.call.retry.max_attempts = 1;
  aft::load::ClientPopulation population(sim, service, tp, 22);
  service.start();
  population.start();

  // Warm deep into the overload phase (clients 800..3200) so every pool is
  // at its high-water mark before measuring.
  while (population.started_sessions() < 2800 && sim.step()) {
  }
  const std::uint64_t shed_before = service.counters().shed;
  const std::uint64_t rounds_before = service.counters().rounds;

  const std::uint64_t allocs = allocations_during([&] {
    while (population.started_sessions() < 3100 && sim.step()) {
    }
  });
  EXPECT_EQ(allocs, 0u);
  // The measured stretch exercised both outcomes: completed rounds AND
  // admission sheds.
  EXPECT_GT(service.counters().rounds, rounds_before);
  EXPECT_GT(service.counters().shed, shed_before);
}

}  // namespace
