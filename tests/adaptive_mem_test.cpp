// Tests for the run-time adaptive memory manager: observation of fault
// modes that contradict the bound assumption, cost-minimal escalation,
// data migration, and the exhausted (untreatable) case.
#include <gtest/gtest.h>

#include "hw/fault_injector.hpp"
#include "hw/machine.hpp"
#include "mem/adaptive.hpp"

namespace {

using namespace aft::mem;
using aft::hw::Machine;
using aft::hw::MemoryTechnology;
using aft::hw::SpdRecord;

/// A platform whose knowledge-base judgment is f1 (benign) but that will be
/// subjected to worse: the mischaracterized-lot scenario.
Machine misjudged_platform(std::size_t banks = 3, std::size_t words = 128) {
  Machine m("optimistically-judged");
  for (std::size_t i = 0; i < banks; ++i) {
    m.add_bank(SpdRecord{.vendor = "CE00000000000000",
                         .model = "DDR-533-1G",  // KB says f1
                         .serial = "S" + std::to_string(i),
                         .lot = "L-opt",
                         .size_mib = 1024,
                         .width_bits = 64,
                         .clock_mhz = 533,
                         .technology = MemoryTechnology::kDdrSdram,
                         .slot = "B" + std::to_string(i)},
               words);
  }
  return m;
}

TEST(AdaptiveMemTest, InitialBindingMatchesSelector) {
  Machine m = misjudged_platform();
  AdaptiveMemoryManager manager(m, MethodSelector{});
  EXPECT_EQ(manager.current_method(), "M1-ecc-scrub");
  EXPECT_EQ(manager.initial_report().required_label, "f1");
  EXPECT_TRUE(manager.history().empty());
  EXPECT_FALSE(manager.exhausted());
}

TEST(AdaptiveMemTest, QuietWorldNeverEscalates) {
  Machine m = misjudged_platform();
  AdaptiveMemoryManager manager(m, MethodSelector{});
  for (std::size_t w = 0; w < 64; ++w) manager.method().write(w, w);
  for (int i = 0; i < 100; ++i) {
    for (std::size_t w = 0; w < 64; ++w) (void)manager.method().read(w);
    EXPECT_FALSE(manager.step());
  }
  EXPECT_TRUE(manager.history().empty());
}

TEST(AdaptiveMemTest, TransientActivityWithinAssumptionNoEscalation) {
  Machine m = misjudged_platform();
  AdaptiveMemoryManager manager(m, MethodSelector{});
  manager.method().write(0, 7);
  m.bank(0).chip->inject_bit_flip(0, 5);
  (void)manager.method().read(0);  // corrected: f1-compatible
  EXPECT_FALSE(manager.step());
  EXPECT_EQ(manager.current_method(), "M1-ecc-scrub");
}

TEST(AdaptiveMemTest, LatchUpEscalatesToMirrorAndMigratesData) {
  Machine m = misjudged_platform();
  AdaptiveMemoryManager manager(m, MethodSelector{});
  const std::size_t n = 64;
  for (std::size_t w = 0; w < n; ++w) manager.method().write(w, w * 11);

  // The world contradicts f1: the single device latches up.
  m.bank(0).chip->inject_latch_up();
  (void)manager.method().read(3);  // observes unavailability

  EXPECT_TRUE(manager.step());
  EXPECT_EQ(manager.current_method(), "M3-sel-mirror");
  ASSERT_EQ(manager.history().size(), 1u);
  const auto& esc = manager.history()[0];
  EXPECT_EQ(esc.from, "M1-ecc-scrub");
  EXPECT_EQ(esc.to, "M3-sel-mirror");
  EXPECT_EQ(esc.observed_label, "f3");
  // The latch-up destroyed the single copy: every word of the old capacity
  // (128, including the unwritten ones) is recorded as lost — honestly, not
  // resurrected as valid-looking zeros.  The SEL data loss happened while
  // under-provisioned; that is the price of the wrong initial assumption,
  // not of the escalation.
  EXPECT_EQ(esc.words_lost, 128u);
  EXPECT_EQ(manager.assumed_modes().sel, true);

  // From here on, new data survives further latch-ups.
  for (std::size_t w = 0; w < n; ++w) manager.method().write(w, w * 13);
  m.bank(0).chip->inject_latch_up();
  for (std::size_t w = 0; w < n; ++w) {
    const auto r = manager.method().read(w);
    ASSERT_TRUE(r.ok());
    ASSERT_EQ(r.value, w * 13);
  }
  EXPECT_FALSE(manager.step());  // M3 masks f3: no further escalation
}

TEST(AdaptiveMemTest, PreLatchUpDataSurvivesWhenObservedBeforeLoss) {
  // A latch-up on a *mirror-capable* platform bound to M1 can be caught by
  // a scrub-like read pattern on bank 1 BEFORE bank 0 dies... here we test
  // the softer path: heavy SEU observed while the device is still alive, so
  // migration happens with full data intact.
  Machine m = misjudged_platform();
  AdaptiveMemoryManager::Config config;
  config.min_reads_for_rate = 100;
  config.heavy_seu_rate_threshold = 1e-3;
  AdaptiveMemoryManager manager(m, MethodSelector{}, config);
  const std::size_t n = 100;
  for (std::size_t w = 0; w < n; ++w) manager.method().write(w, w + 1);

  // Inject double flips into a fraction of words: uncorrectable by M1 but
  // the *other* words carry the rate signal... instead corrupt-and-repair
  // pattern: here we flip one bit in many words (correctable) plus doubles
  // in a few, producing a double_detected rate above threshold.
  for (std::size_t w = 0; w < 10; ++w) {
    m.bank(0).chip->inject_bit_flip(w, 2);
    m.bank(0).chip->inject_bit_flip(w, 40);
  }
  for (std::size_t w = 0; w < n; ++w) (void)manager.method().read(w);

  EXPECT_TRUE(manager.step());
  EXPECT_EQ(manager.current_method(), "M4-tmr-ecc");  // heavy_seu forces TMR
  const auto& esc = manager.history()[0];
  // Migration walks the full old capacity (unwritten words hold valid
  // zeros); only the 10 double-hit words were already unrecoverable.
  const std::size_t old_capacity = 128;
  EXPECT_EQ(esc.words_migrated, old_capacity - 10);
  EXPECT_EQ(esc.words_lost, 10u);
  for (std::size_t w = 10; w < n; ++w) {
    ASSERT_EQ(manager.method().read(w).value, w + 1);
  }
}

TEST(AdaptiveMemTest, ExhaustedWhenPlatformCannotHostTheNeededMethod) {
  Machine m = misjudged_platform(/*banks=*/1);  // M3/M4 impossible
  AdaptiveMemoryManager manager(m, MethodSelector{});
  manager.method().write(0, 1);
  m.bank(0).chip->inject_latch_up();
  (void)manager.method().read(0);
  EXPECT_FALSE(manager.step());
  EXPECT_TRUE(manager.exhausted());
  EXPECT_EQ(manager.current_method(), "M1-ecc-scrub");  // degraded, explicit
  // The hard-learned truth is recorded even though untreatable.
  EXPECT_TRUE(manager.assumed_modes().sel);
}

TEST(AdaptiveMemTest, StuckAtEscalatesToRemap) {
  Machine m = misjudged_platform();
  AdaptiveMemoryManager manager(m, MethodSelector{});
  // M1 cannot observe stuck-at directly (no remap machinery); it sees the
  // persistent single-bit correction as transient activity.  Make the
  // defect visible as repeated corrections plus a failed write-back: the
  // manager's stuck_at observation channel is the remap counter, so drive
  // an M2-capable signal instead: corrections alone must NOT escalate...
  manager.method().write(5, 0);
  m.bank(0).chip->inject_stuck_at(5, 20, true);
  for (int i = 0; i < 10; ++i) (void)manager.method().read(5);
  EXPECT_FALSE(manager.step());  // corrections are f1-compatible: stays M1
  EXPECT_EQ(manager.current_method(), "M1-ecc-scrub");
}

TEST(AdaptiveMemTest, CampaignEndToEnd) {
  // Full loop under an f3-grade injector while the KB judgment was f1: the
  // manager must escalate to M3 and, once adequately provisioned, mask the
  // rest of the campaign completely.
  Machine m = misjudged_platform(3, 128);
  AdaptiveMemoryManager manager(m, MethodSelector{});
  ASSERT_EQ(manager.current_method(), "M1-ecc-scrub");

  aft::hw::FaultProfile profile;
  profile.seu_rate = 2e-3;
  profile.sel_rate = 3e-4;
  std::vector<aft::hw::FaultInjector> injectors;
  for (std::size_t i = 0; i < 3; ++i) {
    injectors.emplace_back(*m.bank(i).chip, profile, 100 + i);
  }

  const std::size_t n = 64;
  for (std::size_t w = 0; w < n; ++w) manager.method().write(w, w);

  std::uint64_t wrong_after_stable = 0;
  bool stabilized = false;
  for (int step = 0; step < 30000; ++step) {
    for (auto& inj : injectors) inj.tick();
    if (step % 4 == 0) manager.method().scrub_step();
    const std::size_t addr = static_cast<std::size_t>(step) % n;
    const auto r = manager.method().read(addr);
    if (stabilized && (!r.ok() || r.value != addr)) ++wrong_after_stable;
    if (!r.ok()) manager.method().write(addr, addr);  // app-level repair
    if (step % 50 == 0) {
      manager.step();
      if (!stabilized && manager.current_method() == "M3-sel-mirror") {
        // Re-seed once after reaching the adequate configuration.
        for (std::size_t w = 0; w < n; ++w) manager.method().write(w, w);
        stabilized = true;
      }
    }
  }
  EXPECT_TRUE(stabilized) << "the latch-ups must force escalation to M3";
  EXPECT_FALSE(manager.exhausted());
  EXPECT_EQ(wrong_after_stable, 0u)
      << "once adequately provisioned, the campaign must be fully masked";
  ASSERT_GE(manager.history().size(), 1u);
  EXPECT_EQ(manager.history()[0].from, "M1-ecc-scrub");
  EXPECT_TRUE(manager.assumed_modes().sel);
}

}  // namespace
