// Tests for deployment manifests: serialization round-trip, parse errors,
// registry population, re-qualification, and the provenance audit.
#include <gtest/gtest.h>

#include "manifest/manifest.hpp"

namespace {

using namespace aft::manifest;
using aft::contract::clause_eq;
using aft::contract::clause_le;
using aft::core::BindingTime;
using aft::core::Context;
using aft::core::Subject;

Manifest reference_manifest() {
  Manifest m;
  m.name = "irs-software";
  m.version = "4.2";
  m.assumptions.push_back(AssumptionRecord{
      .id = "sri.bh.representable",
      .statement = "Horizontal velocity can be represented by a short integer",
      .subject = Subject::kPhysicalEnvironment,
      .origin = "Ariane 4 SRI qualification",
      .rationale = "max HV over qualified trajectories is 21000",
      .stated_at = BindingTime::kDesign,
      .expectation = clause_le("traj.max-hv", 32767.0)});
  m.assumptions.push_back(AssumptionRecord{
      .id = "platform.interlocks",
      .statement = "Hardware interlocks shut the machine down on exceptions",
      .subject = Subject::kHardware,
      .origin = "Therac-20 platform family",
      .rationale = "interlock relays fitted on all prior models",
      .stated_at = BindingTime::kDesign,
      .expectation = clause_eq("platform.has-interlocks", true)});
  m.architectures.push_back(aft::arch::DagSnapshot{
      "D1", {"c1", "c2", "c3"}, {{"c1", "c2"}, {"c2", "c3"}}});
  return m;
}

TEST(ManifestTest, SerializeParseRoundTrip) {
  const Manifest original = reference_manifest();
  const Manifest parsed = Manifest::parse(original.serialize());
  EXPECT_EQ(parsed.name, original.name);
  EXPECT_EQ(parsed.version, original.version);
  ASSERT_EQ(parsed.assumptions.size(), 2u);
  EXPECT_EQ(parsed.assumptions[0], original.assumptions[0]);
  EXPECT_EQ(parsed.assumptions[1], original.assumptions[1]);
  ASSERT_EQ(parsed.architectures.size(), 1u);
  EXPECT_EQ(parsed.architectures[0].name, "D1");
  EXPECT_EQ(parsed.architectures[0].nodes.size(), 3u);
  EXPECT_EQ(parsed.architectures[0].edges.size(), 2u);
}

TEST(ManifestTest, DoubleRoundTripIsIdentity) {
  const Manifest m = reference_manifest();
  const std::string once = m.serialize();
  const std::string twice = Manifest::parse(once).serialize();
  EXPECT_EQ(once, twice);
}

TEST(ManifestTest, ParseToleratesCommentsAndBlankLines) {
  const Manifest m = Manifest::parse(
      "# header comment\n\n[meta]\nname = x\n\n# trailing comment\n");
  EXPECT_EQ(m.name, "x");
}

TEST(ManifestParseErrorTest, KeyValueOutsideSection) {
  EXPECT_THROW((void)Manifest::parse("name = x\n"), ManifestError);
}

TEST(ManifestParseErrorTest, UnknownSection) {
  EXPECT_THROW((void)Manifest::parse("[bogus]\n"), ManifestError);
}

TEST(ManifestParseErrorTest, AssumptionWithoutId) {
  EXPECT_THROW((void)Manifest::parse("[assumption]\nstatement = s\n"
                                     "expect_key = k\n"),
               ManifestError);
}

TEST(ManifestParseErrorTest, AssumptionWithoutExpectation) {
  EXPECT_THROW((void)Manifest::parse("[assumption]\nid = a\n"), ManifestError);
}

TEST(ManifestParseErrorTest, BadOperatorAndSubject) {
  EXPECT_THROW((void)Manifest::parse("[assumption]\nid = a\nexpect_key = k\n"
                                     "expect_op = ~=\n"),
               ManifestError);
  EXPECT_THROW((void)Manifest::parse("[assumption]\nid = a\nexpect_key = k\n"
                                     "subject = galaxy\n"),
               ManifestError);
}

TEST(ManifestParseErrorTest, CyclicArchitectureRejected) {
  EXPECT_THROW((void)Manifest::parse("[architecture]\nname = D\nnode = a\n"
                                     "node = b\nedge = a -> b\nedge = b -> a\n"),
               ManifestError);
}

TEST(ManifestParseErrorTest, ErrorCarriesLineNumber) {
  try {
    (void)Manifest::parse("[meta]\nname = x\nbogus-line-without-equals\n");
    FAIL() << "expected ManifestError";
  } catch (const ManifestError& e) {
    EXPECT_EQ(e.line(), 3u);
  }
}

TEST(ManifestTest, ValueTypingInExpectations) {
  const Manifest m = Manifest::parse(
      "[assumption]\nid = a\nexpect_key = k\nexpect_op = ==\nexpect_value = true\n"
      "[assumption]\nid = b\nexpect_key = k2\nexpect_op = <=\nexpect_value = 42\n"
      "[assumption]\nid = c\nexpect_key = k3\nexpect_op = ==\nexpect_value = hello\n"
      "[assumption]\nid = d\nexpect_key = k4\nexpect_op = >=\nexpect_value = 2.5\n");
  EXPECT_TRUE(std::holds_alternative<bool>(m.assumptions[0].expectation.bound));
  EXPECT_TRUE(std::holds_alternative<std::int64_t>(m.assumptions[1].expectation.bound));
  EXPECT_TRUE(std::holds_alternative<std::string>(m.assumptions[2].expectation.bound));
  EXPECT_TRUE(std::holds_alternative<double>(m.assumptions[3].expectation.bound));
}

TEST(ManifestTest, RequalifyDetectsTheArianeClash) {
  const Manifest m = reference_manifest();

  Context ariane4;
  ariane4.set("traj.max-hv", std::int64_t{21000});
  ariane4.set("platform.has-interlocks", true);
  EXPECT_TRUE(m.requalify(ariane4).empty());

  Context ariane5;
  ariane5.set("traj.max-hv", std::int64_t{39000});
  ariane5.set("platform.has-interlocks", true);
  const auto clashes = m.requalify(ariane5);
  ASSERT_EQ(clashes.size(), 1u);
  EXPECT_EQ(clashes[0].assumption_id, "sri.bh.representable");
  EXPECT_NE(clashes[0].observed.find("39000"), std::string::npos);
}

TEST(ManifestTest, UnobservableContextLeavesAssumptionsUnverified) {
  const Manifest m = reference_manifest();
  Context empty;
  EXPECT_TRUE(m.requalify(empty).empty());  // unverifiable, not violated

  // But a registry populated from the manifest reports them as unverified —
  // visible, unlike the hardwired original.
  aft::core::AssumptionRegistry registry;
  m.populate(registry);
  registry.verify_all(empty);
  EXPECT_EQ(registry.find("sri.bh.representable")->state(),
            aft::core::AssumptionState::kUnverified);
}

TEST(ManifestTest, PopulateRejectsDuplicateIds) {
  Manifest m = reference_manifest();
  m.assumptions.push_back(m.assumptions[0]);
  aft::core::AssumptionRegistry registry;
  EXPECT_THROW(m.populate(registry), std::invalid_argument);
}

TEST(ManifestTest, ProvenanceAuditFlagsHiddenIntelligence) {
  Manifest m = reference_manifest();
  m.assumptions.push_back(AssumptionRecord{
      .id = "mystery",
      .statement = "it just works",
      .subject = Subject::kThirdPartySoftware,
      .origin = "",
      .rationale = "",
      .stated_at = BindingTime::kDesign,
      .expectation = clause_eq("x", true)});
  const auto flagged = m.audit_provenance();
  ASSERT_EQ(flagged.size(), 1u);
  EXPECT_EQ(flagged[0], "mystery");
}

TEST(ClauseAssumptionTest, StateTransitions) {
  const AssumptionRecord record{
      .id = "a",
      .statement = "k <= 10",
      .subject = Subject::kExecutionEnvironment,
      .origin = "o",
      .rationale = "r",
      .stated_at = BindingTime::kDesign,
      .expectation = clause_le("k", 10.0)};
  ClauseAssumption assumption(record);
  Context ctx;
  assumption.verify(ctx);
  EXPECT_EQ(assumption.state(), aft::core::AssumptionState::kUnverified);
  ctx.set("k", 5.0);
  assumption.verify(ctx);
  EXPECT_EQ(assumption.state(), aft::core::AssumptionState::kHolds);
  ctx.set("k", 50.0);
  const auto clash = assumption.verify(ctx);
  ASSERT_TRUE(clash.has_value());
  EXPECT_NE(clash->observed.find("50"), std::string::npos);
  EXPECT_NE(clash->observed.find("k <= 10"), std::string::npos);
}

}  // namespace
