// Tests for the deployment gate (qualify_deployment), context merging,
// FFT wisdom persistence, and the umbrella header.
#include <gtest/gtest.h>

#include "aft.hpp"  // the umbrella: compiling this test validates it

namespace {

using namespace aft;

manifest::Manifest obc_manifest() {
  manifest::Manifest m;
  m.name = "obc-sw";
  m.assumptions.push_back(manifest::AssumptionRecord{
      .id = "hw.memory.semantics",
      .statement = "memory exhibits at worst SDRAM/SEL behaviour (f3)",
      .subject = core::Subject::kHardware,
      .origin = "qualification campaign",
      .rationale = "KB lot entry",
      .stated_at = core::BindingTime::kCompile,
      .expectation = contract::clause_eq("platform.memory.semantics",
                                         std::string("f3"))});
  m.assumptions.push_back(manifest::AssumptionRecord{
      .id = "platform.watchdog",
      .statement = "the platform provides a watchdog timer",
      .subject = core::Subject::kExecutionEnvironment,
      .origin = "safety case",
      .rationale = "hang detection",
      .stated_at = core::BindingTime::kDesign,
      .expectation = contract::clause_eq("platform.watchdog-timer", true)});
  return m;
}

env::PlatformFeatures full_features() {
  return env::PlatformFeatures{.hardware_interlocks = true,
                               .exception_trapping = true,
                               .watchdog_timer = true,
                               .ecc_reporting = true};
}

TEST(DeploymentGateTest, MatchingPlatformIsApproved) {
  hw::Machine obc = hw::machines::satellite_obc(64);
  env::PlatformUnderTest platform("obc", full_features(), full_features());
  const auto report = manifest::qualify_deployment(
      obc_manifest(), obc, mem::MethodSelector{}, &platform);
  EXPECT_TRUE(report.approved());
  EXPECT_EQ(report.memory_behaviour, "f3");
  EXPECT_TRUE(report.hidden.empty());
  EXPECT_EQ(report.context.get<std::string>("platform.memory.method"),
            "M3-sel-mirror");
  EXPECT_EQ(report.context.get<std::int64_t>("platform.memory.banks"), 4);
}

TEST(DeploymentGateTest, WrongPlatformClashesOnMemorySemantics) {
  // The same artifact dropped onto the laptop: its f3 hardware assumption
  // no longer matches the introspected f1 world.
  hw::Machine laptop = hw::machines::laptop(64);
  env::PlatformUnderTest platform("laptop", full_features(), full_features());
  const auto report = manifest::qualify_deployment(
      obc_manifest(), laptop, mem::MethodSelector{}, &platform);
  EXPECT_FALSE(report.approved());
  ASSERT_EQ(report.clashes.size(), 1u);
  EXPECT_EQ(report.clashes[0].assumption_id, "hw.memory.semantics");
}

TEST(DeploymentGateTest, LyingPlatformFailsTheSelfTest) {
  hw::Machine obc = hw::machines::satellite_obc(64);
  env::PlatformFeatures actual = full_features();
  actual.watchdog_timer = false;
  env::PlatformUnderTest platform("obc", full_features(), actual);
  const auto report = manifest::qualify_deployment(
      obc_manifest(), obc, mem::MethodSelector{}, &platform);
  EXPECT_FALSE(report.approved());
  EXPECT_FALSE(report.platform_safe);
  // The watchdog assumption also clashes against the PROBED truth.
  ASSERT_EQ(report.clashes.size(), 1u);
  EXPECT_EQ(report.clashes[0].assumption_id, "platform.watchdog");
}

TEST(DeploymentGateTest, WorksWithoutAPlatformProbe) {
  hw::Machine obc = hw::machines::satellite_obc(64);
  const auto report =
      manifest::qualify_deployment(obc_manifest(), obc, mem::MethodSelector{});
  // The watchdog fact is unobservable -> unverified, not a clash; only the
  // memory record is checked.
  EXPECT_TRUE(report.approved());
  EXPECT_TRUE(report.platform_safe);  // nothing probed, nothing broken
}

// --- Context merge --------------------------------------------------------------------

TEST(ContextMergeTest, OverwritesAndBumpsRevision) {
  core::Context a, b;
  a.set("x", std::int64_t{1});
  a.set("y", std::int64_t{2});
  b.set("y", std::int64_t{20});
  b.set("z", std::int64_t{30});
  const auto rev = a.revision();
  a.merge(b);
  EXPECT_EQ(a.get<std::int64_t>("x"), 1);
  EXPECT_EQ(a.get<std::int64_t>("y"), 20);
  EXPECT_EQ(a.get<std::int64_t>("z"), 30);
  EXPECT_GT(a.revision(), rev);
  // Merging an empty context changes nothing, including the revision.
  const auto rev2 = a.revision();
  a.merge(core::Context{});
  EXPECT_EQ(a.revision(), rev2);
}

// --- FFT wisdom -----------------------------------------------------------------------

TEST(WisdomTest, ExportImportRoundTrip) {
  tune::FftPlanner measuring(1);
  (void)measuring.plan_for(64);
  (void)measuring.plan_for(12);
  const std::string wisdom = measuring.export_wisdom();

  tune::FftPlanner informed(1);
  informed.import_wisdom(wisdom);
  EXPECT_EQ(informed.cached_plans(), 2u);
  (void)informed.plan_for(64);
  (void)informed.plan_for(12);
  EXPECT_EQ(informed.plannings(), 0u);  // no re-measurement needed
  // Imported plans still execute correctly.
  tune::Signal input(64, tune::Complex{1, 0});
  EXPECT_EQ(informed.transform(input).size(), 64u);
}

TEST(WisdomTest, MalformedWisdomRejectedAtomically) {
  tune::FftPlanner planner(1);
  EXPECT_THROW(planner.import_wisdom("64 iterative-fft\n"), std::invalid_argument);
  EXPECT_THROW(planner.import_wisdom("64 warp-drive 1.0\n"), std::invalid_argument);
  EXPECT_THROW(planner.import_wisdom("12 iterative-fft 1.0\n"),
               std::invalid_argument);  // fast plan for non-pow2
  EXPECT_EQ(planner.cached_plans(), 0u);  // nothing leaked in
  planner.import_wisdom("# only comments\n\n");
  EXPECT_EQ(planner.cached_plans(), 0u);
}

}  // namespace
