// Tests for stateful components, checkpoint/rollback, and replica health
// tracking (retirement).
#include <gtest/gtest.h>

#include <memory>

#include "arch/stateful.hpp"
#include "ftpat/checkpoint.hpp"
#include "vote/health.hpp"

namespace {

using aft::arch::ScriptedStatefulComponent;
using aft::ftpat::CheckpointRollbackComponent;

// --- ScriptedStatefulComponent ------------------------------------------------------

TEST(StatefulComponentTest, AccumulatesByDefault) {
  ScriptedStatefulComponent acc("acc");
  EXPECT_EQ(acc.process(5).value, 5);
  EXPECT_EQ(acc.process(3).value, 8);
  EXPECT_EQ(acc.snapshot_state(), 8);
  acc.restore_state(100);
  EXPECT_EQ(acc.process(1).value, 101);
}

TEST(StatefulComponentTest, CrashCorruptsState) {
  ScriptedStatefulComponent acc("acc");
  acc.process(10);
  acc.crash_corrupting_next(1, 7);
  EXPECT_FALSE(acc.process(5).ok);
  EXPECT_EQ(acc.snapshot_state(), 17);  // 10 + the half-done 7
}

TEST(StatefulComponentTest, SilentStateCorruption) {
  ScriptedStatefulComponent acc("acc");
  acc.corrupt_state_next(1, 1000);
  const auto r = acc.process(1);
  EXPECT_TRUE(r.ok);                      // reports success...
  EXPECT_EQ(acc.snapshot_state(), 1001);  // ...but the state is poisoned
}

// --- CheckpointRollbackComponent ------------------------------------------------------

TEST(CheckpointTest, NullInnerRejected) {
  EXPECT_THROW(CheckpointRollbackComponent("c", nullptr), std::invalid_argument);
}

TEST(CheckpointTest, CleanPathNoRollbacks) {
  auto acc = std::make_shared<ScriptedStatefulComponent>("acc");
  CheckpointRollbackComponent cr("cr", acc);
  EXPECT_EQ(cr.process(5).value, 5);
  EXPECT_EQ(cr.process(5).value, 10);
  EXPECT_EQ(cr.rollbacks(), 0u);
}

TEST(CheckpointTest, CrashMidStepIsRolledBackAndRedone) {
  auto acc = std::make_shared<ScriptedStatefulComponent>("acc");
  CheckpointRollbackComponent cr("cr", acc);
  cr.process(10);
  acc->crash_corrupting_next(1, 999);
  const auto r = cr.process(5);
  EXPECT_TRUE(r.ok);
  EXPECT_EQ(r.value, 15);  // the corrupted partial update never survived
  EXPECT_EQ(cr.rollbacks(), 1u);
  EXPECT_EQ(acc->snapshot_state(), 15);
}

TEST(CheckpointTest, PlainRedoWouldHaveCompoundedTheCorruption) {
  // Control experiment: WITHOUT rollback, retrying a crash that corrupted
  // state produces a wrong final result — the reason this pattern exists.
  auto acc = std::make_shared<ScriptedStatefulComponent>("acc");
  acc->process(10);
  acc->crash_corrupting_next(1, 999);
  (void)acc->process(5);      // crash, state now 1009
  const auto r = acc->process(5);  // naive redo on corrupted state
  EXPECT_TRUE(r.ok);
  EXPECT_EQ(r.value, 1014);   // ok-looking, silently wrong (should be 15)
}

TEST(CheckpointTest, AcceptanceTestTriggersRollback) {
  auto acc = std::make_shared<ScriptedStatefulComponent>("acc");
  CheckpointRollbackComponent cr(
      "cr", acc, 8,
      [](std::int64_t, std::int64_t out) { return out < 100; });
  acc->corrupt_state_next(1, 1000);  // silent corruption -> output 1001
  const auto r = cr.process(1);
  EXPECT_TRUE(r.ok);
  EXPECT_EQ(r.value, 1);  // redone cleanly after the rejected attempt
  EXPECT_EQ(cr.rejections(), 1u);
  EXPECT_EQ(cr.rollbacks(), 1u);
}

TEST(CheckpointTest, ExhaustionRestoresLastGoodState) {
  auto acc = std::make_shared<ScriptedStatefulComponent>("acc");
  CheckpointRollbackComponent cr("cr", acc, 3);
  cr.process(10);
  acc->crash_corrupting_next(100, 999);  // fails far beyond the budget
  EXPECT_FALSE(cr.process(5).ok);
  EXPECT_EQ(cr.exhaustions(), 1u);
  EXPECT_EQ(cr.rollbacks(), 4u);          // initial try + 3 retries, all undone
  EXPECT_EQ(acc->snapshot_state(), 10);   // state is still the checkpoint
}

// --- ReplicaHealthTracker ---------------------------------------------------------------

TEST(ReplicaHealthTest, HealthyFarmNobodyRetirable) {
  aft::vote::VotingFarm farm(5, [](aft::vote::Ballot in, std::size_t) { return in; });
  aft::vote::ReplicaHealthTracker tracker;
  for (int i = 0; i < 100; ++i) {
    const auto report = farm.invoke(i);
    tracker.observe(farm, report);
  }
  EXPECT_TRUE(tracker.retirable().empty());
  EXPECT_EQ(tracker.slots_seen(), 5u);
}

TEST(ReplicaHealthTest, StuckReplicaIsIdentified) {
  aft::vote::VotingFarm farm(5, [](aft::vote::Ballot in, std::size_t replica) {
    return replica == 2 ? 0 : in + 1;  // slot 2 is wedged at 0
  });
  aft::vote::ReplicaHealthTracker tracker;
  for (int i = 1; i < 20; ++i) tracker.observe(farm, farm.invoke(i));
  const auto retirable = tracker.retirable();
  ASSERT_EQ(retirable.size(), 1u);
  EXPECT_EQ(retirable[0], 2u);
  EXPECT_EQ(tracker.judgment(0), aft::detect::FaultJudgment::kNoEvidence);
}

TEST(ReplicaHealthTest, OccasionalUpsetStaysInService) {
  aft::vote::VotingFarm farm(5, [](aft::vote::Ballot in, std::size_t replica) {
    // Slot 4 diverges once every 50 rounds.
    return (replica == 4 && in % 50 == 0) ? in + 100 : in;
  });
  aft::vote::ReplicaHealthTracker tracker;
  for (int i = 0; i < 500; ++i) tracker.observe(farm, farm.invoke(i));
  EXPECT_TRUE(tracker.retirable().empty());
  EXPECT_EQ(tracker.judgment(4), aft::detect::FaultJudgment::kTransient);
}

TEST(ReplicaHealthTest, FailedRoundsAttributeNothing) {
  // Every replica answers differently: no majority, no attribution.
  aft::vote::VotingFarm farm(3, [](aft::vote::Ballot in, std::size_t replica) {
    return in + static_cast<aft::vote::Ballot>(replica);
  });
  aft::vote::ReplicaHealthTracker tracker;
  for (int i = 0; i < 50; ++i) tracker.observe(farm, farm.invoke(i));
  EXPECT_EQ(tracker.slots_seen(), 0u);
  EXPECT_TRUE(tracker.retirable().empty());
}

TEST(ReplicaHealthTest, RepairRestartsHistory) {
  bool broken = true;
  aft::vote::VotingFarm farm(3, [&](aft::vote::Ballot in, std::size_t replica) {
    return (replica == 0 && broken) ? -1 : in;
  });
  aft::vote::ReplicaHealthTracker tracker;
  for (int i = 1; i < 10; ++i) tracker.observe(farm, farm.invoke(i));
  ASSERT_EQ(tracker.retirable(), std::vector<std::size_t>{0});
  broken = false;  // physical replacement
  tracker.mark_repaired(0);
  for (int i = 1; i < 10; ++i) tracker.observe(farm, farm.invoke(i));
  EXPECT_TRUE(tracker.retirable().empty());
}

TEST(ReplicaHealthTest, FarmShrinkRetiresStaleSlotChannels) {
  // Regression: slots_seen_ only ever grew, so after a farm shrink
  // retirable() kept reporting slot indices that no longer existed — and a
  // later re-grow handed the departed unit's error history to whatever new
  // unit landed in that slot.
  bool broken = true;
  aft::vote::VotingFarm farm(7, [&](aft::vote::Ballot in, std::size_t replica) {
    return (replica == 5 && broken) ? -1 : in;
  });
  aft::vote::ReplicaHealthTracker tracker;
  for (int i = 1; i < 10; ++i) tracker.observe(farm, farm.invoke(i));
  ASSERT_EQ(tracker.retirable(), std::vector<std::size_t>{5});
  EXPECT_EQ(tracker.slots_seen(), 7u);

  farm.resize(3);
  tracker.observe(farm, farm.invoke(10));
  EXPECT_EQ(tracker.slots_seen(), 3u);
  EXPECT_TRUE(tracker.retirable().empty());

  // Re-grow with a repaired unit in slot 5: no inherited history.
  broken = false;
  farm.resize(7);
  tracker.observe(farm, farm.invoke(11));
  EXPECT_EQ(tracker.slots_seen(), 7u);
  EXPECT_TRUE(tracker.retirable().empty());
}

TEST(ReplicaHealthTest, ShrinkIsTrackedEvenOnNoMajorityRounds) {
  // The arity bookkeeping must run before the no-ground-truth early-out:
  // a shrink followed only by failed rounds still retires the stale slots.
  bool scatter = false;
  aft::vote::VotingFarm farm(5, [&](aft::vote::Ballot in, std::size_t replica) {
    if (scatter) return in + static_cast<aft::vote::Ballot>(replica);
    return replica == 4 ? aft::vote::Ballot{-1} : in;
  });
  aft::vote::ReplicaHealthTracker tracker;
  for (int i = 1; i < 10; ++i) tracker.observe(farm, farm.invoke(i));
  ASSERT_EQ(tracker.retirable(), std::vector<std::size_t>{4});

  farm.resize(3);
  scatter = true;  // every ballot now differs: no majority
  const auto report = farm.invoke(50);
  ASSERT_FALSE(report.success);
  tracker.observe(farm, report);
  EXPECT_EQ(tracker.slots_seen(), 3u);
  EXPECT_TRUE(tracker.retirable().empty());
}

}  // namespace
