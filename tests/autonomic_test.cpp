// Tests for the Sect. 3.3 machinery: authenticated resize messages, the
// Reflective Switchboard policy, and the scripted adaptation experiments
// behind Figs. 6 and 7.
#include <gtest/gtest.h>

#include "autonomic/experiment.hpp"
#include "autonomic/secure_message.hpp"
#include "autonomic/switchboard.hpp"
#include "vote/dtof.hpp"
#include "vote/voting_farm.hpp"

namespace {

using namespace aft::autonomic;
using aft::vote::RoundReport;
using aft::vote::VotingFarm;

// --- Secure messages -------------------------------------------------------------

TEST(SecureMessageTest, SignedMessageAccepted) {
  ResizeSigner signer(0xABCDEF12u);
  SecureChannel channel(0xABCDEF12u);
  const SignedResize msg = signer.sign(5);
  const auto cmd = channel.accept(msg);
  ASSERT_TRUE(cmd.has_value());
  EXPECT_EQ(cmd->target_replicas, 5u);
  EXPECT_EQ(channel.accepted(), 1u);
}

TEST(SecureMessageTest, ForgedMacRejected) {
  ResizeSigner signer(111);
  SecureChannel channel(111);
  SignedResize msg = signer.sign(5);
  msg.command.target_replicas = 99;  // tampered payload
  EXPECT_FALSE(channel.accept(msg).has_value());
  EXPECT_EQ(channel.rejected_mac(), 1u);
}

TEST(SecureMessageTest, WrongKeyRejected) {
  ResizeSigner signer(111);
  SecureChannel channel(222);
  EXPECT_FALSE(channel.accept(signer.sign(5)).has_value());
  EXPECT_EQ(channel.rejected_mac(), 1u);
}

TEST(SecureMessageTest, ReplayRejected) {
  ResizeSigner signer(7);
  SecureChannel channel(7);
  const SignedResize msg = signer.sign(5);
  EXPECT_TRUE(channel.accept(msg).has_value());
  EXPECT_FALSE(channel.accept(msg).has_value());  // same nonce again
  EXPECT_EQ(channel.rejected_replay(), 1u);
}

TEST(SecureMessageTest, NoncesIncreaseAcrossMessages) {
  ResizeSigner signer(7);
  SecureChannel channel(7);
  EXPECT_TRUE(channel.accept(signer.sign(5)).has_value());
  EXPECT_TRUE(channel.accept(signer.sign(7)).has_value());
  EXPECT_TRUE(channel.accept(signer.sign(3)).has_value());
  EXPECT_EQ(channel.accepted(), 3u);
}

// --- ReflectiveSwitchboard ---------------------------------------------------------

VotingFarm healthy_farm(std::size_t n) {
  return VotingFarm(n, [](aft::vote::Ballot in, std::size_t) { return in; });
}

RoundReport report_of(std::size_t n, std::size_t dissent, bool success = true) {
  RoundReport r;
  r.n = n;
  r.dissent = dissent;
  r.success = success;
  r.distance = success ? aft::vote::dtof(n, dissent) : 0;
  return r;
}

TEST(SwitchboardTest, PolicyValidation) {
  VotingFarm farm = healthy_farm(3);
  ReflectiveSwitchboard::Policy bad;
  bad.min_replicas = 9;
  bad.max_replicas = 3;
  EXPECT_THROW(ReflectiveSwitchboard(farm, bad, 1), std::invalid_argument);
  ReflectiveSwitchboard::Policy odd_step;
  odd_step.step = 1;
  EXPECT_THROW(ReflectiveSwitchboard(farm, odd_step, 1), std::invalid_argument);
}

TEST(SwitchboardTest, CriticalDtofRaisesImmediately) {
  VotingFarm farm = healthy_farm(3);
  ReflectiveSwitchboard board(farm, ReflectiveSwitchboard::Policy{}, 42);
  board.observe(report_of(3, 1));  // dtof(3,1) = 1 <= critical
  EXPECT_EQ(farm.replicas(), 5u);
  EXPECT_EQ(board.raises(), 1u);
}

TEST(SwitchboardTest, VotingFailureRaisesImmediately) {
  VotingFarm farm = healthy_farm(3);
  ReflectiveSwitchboard board(farm, ReflectiveSwitchboard::Policy{}, 42);
  board.observe(report_of(3, 2, /*success=*/false));  // distance 0
  EXPECT_EQ(farm.replicas(), 5u);
}

TEST(SwitchboardTest, RespectsMaxReplicas) {
  VotingFarm farm = healthy_farm(9);
  ReflectiveSwitchboard board(farm, ReflectiveSwitchboard::Policy{}, 42);
  for (int i = 0; i < 10; ++i) board.observe(report_of(9, 4));  // critical
  EXPECT_EQ(farm.replicas(), 9u);  // capped
  EXPECT_EQ(board.raises(), 0u);
}

TEST(SwitchboardTest, RaiseWithWideStepClampsToMaxReplicas) {
  // Regression: a raise was requested at n + step unclamped, so a wide step
  // near the ceiling pushed the farm past policy.max_replicas (5 + 6 = 11
  // here) — and every later "RespectsMaxReplicas" comparison silently used
  // the oversized farm.
  VotingFarm farm = healthy_farm(5);
  ReflectiveSwitchboard::Policy policy;
  policy.step = 6;
  ReflectiveSwitchboard board(farm, policy, 42);
  board.observe(report_of(5, 2));  // critical: must raise, but only to max
  EXPECT_EQ(farm.replicas(), 9u);
  EXPECT_EQ(board.raises(), 1u);
  // At the ceiling the controller stays put.
  board.observe(report_of(9, 4));
  EXPECT_EQ(farm.replicas(), 9u);
}

TEST(SwitchboardTest, LowerWithWideStepClampsToMinReplicas) {
  // Regression: the lower target was computed as n - step in std::size_t,
  // so step > n underflowed to a gigantic replica count and the "lower"
  // actually grew the farm by a few quintillion replicas.
  VotingFarm farm = healthy_farm(3);
  ReflectiveSwitchboard::Policy policy;
  policy.min_replicas = 1;
  policy.step = 4;
  policy.lower_after = 1;
  ReflectiveSwitchboard board(farm, policy, 42);
  board.observe(report_of(3, 0));  // high round -> lower, clamped to min
  EXPECT_EQ(farm.replicas(), 1u);
  EXPECT_EQ(board.lowers(), 1u);
}

TEST(SwitchboardTest, LowersOnlyAfterConsecutiveHighRounds) {
  VotingFarm farm = healthy_farm(5);
  ReflectiveSwitchboard::Policy policy;
  policy.lower_after = 100;
  ReflectiveSwitchboard board(farm, policy, 42);
  for (int i = 0; i < 99; ++i) board.observe(report_of(5, 0));
  EXPECT_EQ(farm.replicas(), 5u);  // not yet
  board.observe(report_of(5, 0));  // 100th consecutive consensus
  EXPECT_EQ(farm.replicas(), 3u);
  EXPECT_EQ(board.lowers(), 1u);
}

TEST(SwitchboardTest, MidBandDissentResetsTheHighStreak) {
  VotingFarm farm = healthy_farm(9);
  ReflectiveSwitchboard::Policy policy;
  policy.lower_after = 10;
  ReflectiveSwitchboard board(farm, policy, 42);
  for (int i = 0; i < 9; ++i) board.observe(report_of(9, 0));
  board.observe(report_of(9, 2));  // dtof(9,2)=3: mid-band (not critical, not max)
  EXPECT_EQ(board.consecutive_high(), 0u);
  for (int i = 0; i < 9; ++i) board.observe(report_of(9, 0));
  EXPECT_EQ(farm.replicas(), 9u);  // streak restarted, still no lower
  board.observe(report_of(9, 0));
  EXPECT_EQ(farm.replicas(), 7u);
}

TEST(SwitchboardTest, RespectsMinReplicas) {
  VotingFarm farm = healthy_farm(3);
  ReflectiveSwitchboard::Policy policy;
  policy.lower_after = 5;
  ReflectiveSwitchboard board(farm, policy, 42);
  for (int i = 0; i < 50; ++i) board.observe(report_of(3, 0));
  EXPECT_EQ(farm.replicas(), 3u);
  EXPECT_EQ(board.lowers(), 0u);
}

TEST(SwitchboardTest, OccupancyHistogramTracksEveryRound) {
  VotingFarm farm = healthy_farm(3);
  ReflectiveSwitchboard::Policy policy;
  policy.lower_after = 1000;
  ReflectiveSwitchboard board(farm, policy, 42);
  for (int i = 0; i < 10; ++i) board.observe(report_of(3, 0));
  board.observe(report_of(3, 1));  // raise
  for (int i = 0; i < 5; ++i) board.observe(report_of(5, 0));
  const auto& h = board.redundancy_histogram();
  EXPECT_EQ(h.count(3), 11u);
  EXPECT_EQ(h.count(5), 5u);
  EXPECT_EQ(h.total(), 16u);
}

TEST(SwitchboardTest, ResizeHookObservesTransitions) {
  VotingFarm farm = healthy_farm(3);
  ReflectiveSwitchboard::Policy policy;
  policy.lower_after = 2;
  ReflectiveSwitchboard board(farm, policy, 42);
  std::vector<std::pair<std::size_t, bool>> events;
  board.set_resize_hook([&](std::size_t n, bool raised) {
    events.emplace_back(n, raised);
  });
  board.observe(report_of(3, 1));          // raise -> 5
  board.observe(report_of(5, 0));
  board.observe(report_of(5, 0));          // lower -> 3
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0], (std::pair<std::size_t, bool>{5, true}));
  EXPECT_EQ(events[1], (std::pair<std::size_t, bool>{3, false}));
}

TEST(SwitchboardTest, AllResizesWereAuthenticated) {
  VotingFarm farm = healthy_farm(3);
  ReflectiveSwitchboard::Policy policy;
  policy.lower_after = 3;
  ReflectiveSwitchboard board(farm, policy, 42);
  for (int i = 0; i < 20; ++i) board.observe(report_of(farm.replicas(), i % 7 == 0 ? 1 : 0));
  EXPECT_EQ(board.channel().accepted(), board.raises() + board.lowers());
  EXPECT_EQ(board.channel().rejected_mac(), 0u);
  EXPECT_EQ(board.channel().rejected_replay(), 0u);
}

// --- Adaptation experiments (Figs. 6 and 7) -------------------------------------------

TEST(ExperimentTest, CalmEnvironmentStaysAtMinimumForever) {
  ExperimentConfig config;
  config.policy.lower_after = 100;
  config.record_series = false;
  const auto result = run_adaptation_experiment(
      config, {DisturbancePhase{.duration = 50000, .corruption_prob = 0.0}});
  EXPECT_EQ(result.steps, 50000u);
  EXPECT_EQ(result.voting_failures, 0u);
  EXPECT_EQ(result.raises, 0u);
  EXPECT_DOUBLE_EQ(result.fraction_at(3), 1.0);
}

TEST(ExperimentTest, Fig6ShapeRaiseThenDecay) {
  ExperimentConfig config;
  config.policy.lower_after = 1000;
  config.series_sample_every = 10;
  const auto result = run_adaptation_experiment(config, fig6_script());

  // During the burst the controller must have raised redundancy...
  EXPECT_GT(result.raises, 0u);
  EXPECT_GT(result.redundancy.count(5), 0u);
  // ...and after the burst it must have come back down.
  EXPECT_GT(result.lowers, 0u);
  ASSERT_FALSE(result.series.empty());
  EXPECT_EQ(result.series.back().replicas, 3u);

  // Shape check on the series: max redundancy is reached inside/after the
  // burst window, not before it.
  std::size_t max_replicas = 0;
  std::uint64_t argmax = 0;
  for (const auto& p : result.series) {
    if (p.replicas > max_replicas) {
      max_replicas = p.replicas;
      argmax = p.step;
    }
  }
  EXPECT_GE(max_replicas, 5u);
  EXPECT_GE(argmax, 3000u);   // burst starts at t=3000
  EXPECT_LE(argmax, 4500u + 1000u);  // and adaptation tracks it closely
}

TEST(ExperimentTest, HeavierDisturbanceUsesMoreRedundancy) {
  ExperimentConfig config;
  config.policy.lower_after = 200;
  config.record_series = false;
  const auto mild = run_adaptation_experiment(
      config, {DisturbancePhase{20000, 0.001}});
  const auto harsh = run_adaptation_experiment(
      config, {DisturbancePhase{20000, 0.30}});
  // The eager controller climbs in both worlds; the sustained occupancy is
  // what tracks the disturbance level.
  auto mean_redundancy = [](const ExperimentResult& r) {
    double mean = 0;
    for (const auto& [degree, count] : r.redundancy.bins()) {
      mean += static_cast<double>(degree) * static_cast<double>(count);
    }
    return mean / static_cast<double>(r.redundancy.total());
  };
  EXPECT_GT(mean_redundancy(harsh), mean_redundancy(mild));
  EXPECT_LT(harsh.fraction_at(3), mild.fraction_at(3));
  EXPECT_GT(harsh.faults_injected, mild.faults_injected);
}

TEST(ExperimentTest, DeterministicUnderSameSeed) {
  ExperimentConfig config;
  config.seed = 777;
  config.record_series = false;
  const auto a = run_adaptation_experiment(config, fig6_script());
  const auto b = run_adaptation_experiment(config, fig6_script());
  EXPECT_EQ(a.raises, b.raises);
  EXPECT_EQ(a.lowers, b.lowers);
  EXPECT_EQ(a.faults_injected, b.faults_injected);
  EXPECT_EQ(a.redundancy.count(3), b.redundancy.count(3));
}

TEST(ExperimentTest, Fig7MiniatureNoFailuresAndHeavyMassAtMinimum) {
  // A scaled-down Fig. 7: despite periodic bursts, the adaptive scheme must
  // (a) avoid every voting failure and (b) spend the overwhelming majority
  // of its life at r = 3.
  ExperimentConfig config;
  config.policy.lower_after = 1000;
  config.record_series = false;
  const std::uint64_t steps = 400000;
  const auto result = run_adaptation_experiment(config, fig7_script(steps));
  EXPECT_EQ(result.steps, steps);
  EXPECT_EQ(result.voting_failures, 0u);
  EXPECT_GT(result.faults_injected, 0u);
  EXPECT_GT(result.fraction_at(3), 0.9);
  // Only the configured degrees appear.
  for (const auto& [degree, count] : result.redundancy.bins()) {
    EXPECT_TRUE(degree == 3 || degree == 5 || degree == 7 || degree == 9);
  }
}

TEST(ExperimentTest, Fig7ScriptCoversRequestedSteps) {
  const auto script = fig7_script(1000000);
  std::uint64_t total = 0;
  for (const auto& phase : script) total += phase.duration;
  EXPECT_EQ(total, 1000000u);
}

}  // namespace
