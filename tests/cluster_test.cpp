// Tests for the replicated-service composition (src/cluster): fan-out
// rounds voted over network replicas, per-slot no-reply sentinels, the
// membership evict -> auto-reinstate round trip, ballot-stream suspicion
// and repair(), plus the campaign determinism and causal-chain guarantees
// the abl_cluster_adaptation bench (and its CI jobs) rely on.
//
// Heartbeats re-arm forever, so every scenario bounds the clock with
// run_until() — run_all() would never return.
#include <gtest/gtest.h>

#include <array>
#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "cluster/replica.hpp"
#include "net/link.hpp"
#include "sim/simulator.hpp"
#include "util/campaign.hpp"
#include "vote/voting_farm.hpp"

#if !defined(AFT_OBS_DISABLED)
#include "obs/obs.hpp"
#include "trace_analysis.hpp"
#include "trace_reader.hpp"
#endif

namespace {

using aft::cluster::ClusterParams;
using aft::cluster::InvokeOutcome;
using aft::cluster::ReplicatedService;
using aft::net::LinkFaults;
using aft::sim::SimTime;
using aft::sim::Simulator;
using aft::vote::Ballot;
using aft::vote::RoundReport;

constexpr SimTime kRoundInterval = 30;

LinkFaults quiet_wire() {
  LinkFaults f;
  f.latency = 2;
  f.jitter = 1;
  return f;
}

/// A small pool with bench-like timing: fast heartbeats, a 10-tick
/// membership window, and fan-out calls that give up well inside one round
/// interval.
ClusterParams small_params(std::size_t pool) {
  ClusterParams p;
  p.pool = pool;
  p.wire.to_replica = quiet_wire();
  p.wire.from_replica = quiet_wire();
  p.policy.min_replicas = 3;
  p.policy.max_replicas = pool;
  p.policy.step = 2;
  p.policy.lower_after = 1u << 20;  // tests never exercise the lower path
  p.call.deadline = 15;
  p.call.retry.max_attempts = 2;
  p.call.retry.initial_backoff = 4;
  p.call.retry.max_backoff = 8;
  p.heartbeat_period = 4;
  p.membership.deadline = 10;
  p.reinstate_after_beats = 3;
  return p;
}

Ballot correct_value(Ballot input) { return input * 2 + 1; }

TEST(ClusterTest, ConstructionAndLifecycleValidation) {
  Simulator sim;
  EXPECT_THROW(ReplicatedService(sim, small_params(5), nullptr, 1),
               std::invalid_argument);
  EXPECT_THROW(ReplicatedService(
                   sim, small_params(2),
                   [](Ballot input, std::size_t) { return input; }, 1),
               std::invalid_argument);
  ReplicatedService service(
      sim, small_params(5),
      [](Ballot input, std::size_t) { return correct_value(input); }, 1);
  EXPECT_THROW(service.invoke(1, nullptr), std::logic_error);
}

TEST(ClusterTest, CleanRoundsReachConsensusWithoutDissent) {
  Simulator sim;
  ReplicatedService service(
      sim, small_params(5),
      [](Ballot input, std::size_t) { return correct_value(input); }, 7);
  service.start();

  std::vector<RoundReport> reports;
  for (std::uint64_t k = 0; k < 5; ++k) {
    sim.schedule_at(k * kRoundInterval, [&service, &reports, k] {
      service.invoke(static_cast<Ballot>(k),
                     [&reports](InvokeOutcome, const RoundReport& r) {
                       reports.push_back(r);
                     });
    });
  }
  sim.run_until(5 * kRoundInterval + 200);

  ASSERT_EQ(reports.size(), 5u);
  for (std::uint64_t k = 0; k < 5; ++k) {
    EXPECT_TRUE(reports[k].success);
    EXPECT_EQ(reports[k].value, correct_value(static_cast<Ballot>(k)));
    EXPECT_EQ(reports[k].dissent, 0u);
    EXPECT_EQ(reports[k].n, 3u);  // min_replicas arity, never raised
  }
  EXPECT_EQ(service.counters().rounds, 5u);
  EXPECT_EQ(service.counters().no_quorum, 0u);
  EXPECT_EQ(service.counters().dissent_rounds, 0u);
  EXPECT_EQ(service.switchboard().raises(), 0u);
  EXPECT_EQ(service.live_count(), 5u);
}

TEST(ClusterTest, PartiallyResponsiveReplicaSetStillVotesAMajority) {
  // Replica 0 is partitioned before the first round: its slot reports the
  // per-slot sentinel, the two live replicas still form a majority, and
  // the dissent raises redundancy so spares absorb the loss.
  Simulator sim;
  ReplicatedService service(
      sim, small_params(5),
      [](Ballot input, std::size_t) { return correct_value(input); }, 11);
  service.start();
  service.link_to(0).partition();
  service.link_from(0).partition();

  std::vector<RoundReport> reports;
  constexpr std::uint64_t kRounds = 12;
  for (std::uint64_t k = 0; k < kRounds; ++k) {
    sim.schedule_at(k * kRoundInterval, [&service, &reports] {
      service.invoke(42, [&reports](InvokeOutcome, const RoundReport& r) {
        reports.push_back(r);
      });
    });
  }
  sim.run_until(kRounds * kRoundInterval + 300);

  ASSERT_EQ(reports.size(), kRounds);
  for (const RoundReport& r : reports) {
    EXPECT_TRUE(r.success);  // the live majority always outvotes the hole
    EXPECT_EQ(r.value, correct_value(42));
  }
  // The first round voted short (sentinel dissent) and raised.
  EXPECT_GE(reports[0].dissent, 1u);
  EXPECT_GT(service.counters().dissent_rounds, 0u);
  EXPECT_EQ(service.counters().no_quorum, 0u);
  EXPECT_GE(service.switchboard().raises(), 1u);
  // The silent member was evicted, and later rounds substituted spares.
  EXPECT_EQ(service.counters().evictions, 1u);
  EXPECT_FALSE(service.eligible(0));
  EXPECT_GT(service.counters().substituted_rounds, 0u);
}

TEST(ClusterTest, NoQuorumWhenTheMajorityIsPartitioned) {
  Simulator sim;
  ClusterParams params = small_params(3);
  ReplicatedService service(
      sim, params,
      [](Ballot input, std::size_t) { return correct_value(input); }, 13);
  service.start();
  // Two of the three assigned replicas can never answer; their distinct
  // sentinels must not accidentally agree into a majority.
  for (std::size_t i : {std::size_t{1}, std::size_t{2}}) {
    service.link_to(i).partition();
    service.link_from(i).partition();
  }

  std::vector<RoundReport> reports;
  sim.schedule_at(1, [&service, &reports] {
    service.invoke(42, [&reports](InvokeOutcome, const RoundReport& r) {
      reports.push_back(r);
    });
  });
  sim.run_until(200);

  ASSERT_EQ(reports.size(), 1u);
  EXPECT_FALSE(reports[0].success);
  EXPECT_EQ(service.counters().no_quorum, 1u);
}

TEST(ClusterTest, EvictedMemberIsAutoReinstatedOnceItsBeatsResume) {
  Simulator sim;
  ReplicatedService service(
      sim, small_params(5),
      [](Ballot input, std::size_t) { return correct_value(input); }, 17);
  service.start();

  // Cut the member's wires: its heartbeats stop arriving and the miss
  // pattern drives the membership verdict down.
  service.link_to(0).partition();
  service.link_from(0).partition();
  sim.run_until(200);
  EXPECT_FALSE(service.membership().up(service.replica_name(0)));
  EXPECT_FALSE(service.eligible(0));
  EXPECT_EQ(service.counters().evictions, 1u);
  EXPECT_EQ(service.live_count(), 4u);
  // The eviction was pushed to the switchboard as an external disturbance.
  EXPECT_EQ(service.switchboard().disturbance_raises(), 1u);

  // Heal the wires only: the beats that get through ARE the evidence the
  // unit recovered — after reinstate_after_beats of them it is readmitted
  // without any administrative repair().
  service.link_to(0).heal();
  service.link_from(0).heal();
  sim.run_until(400);
  EXPECT_TRUE(service.membership().up(service.replica_name(0)));
  EXPECT_TRUE(service.eligible(0));
  EXPECT_EQ(service.counters().reinstatements, 1u);
  EXPECT_EQ(service.live_count(), 5u);
}

TEST(ClusterTest, FlappingMemberRestartsItsReinstatementBeatCount) {
  // Regression: auto-reinstatement demands `reinstate_after_beats`
  // *consecutive* beats.  Pre-fix the resumed-beat count survived misses
  // while the member stayed down, so a flapping wire (a few beats leak
  // through, silence, a few more) accumulated stale credit across the gaps
  // and readmitted a member that never actually sustained a heartbeat
  // stream.
#if !defined(AFT_OBS_DISABLED)
  aft::obs::TraceSink sink;
  const aft::obs::ScopedObs scope(&sink, nullptr);
#endif
  Simulator sim;
  ClusterParams params = small_params(5);
  // High enough that one brief heal window (10 ticks ~ 2-3 beats) can
  // never legitimately reinstate, but three windows' stale credit would.
  params.reinstate_after_beats = 5;
  ReplicatedService service(
      sim, params,
      [](Ballot input, std::size_t) { return correct_value(input); }, 29);
  service.start();
  service.link_to(0).partition();
  service.link_from(0).partition();
  sim.run_until(100);
  ASSERT_FALSE(service.membership().up(service.replica_name(0)));
  ASSERT_EQ(service.counters().evictions, 1u);

  // Three flap cycles: heal for 10 ticks (a couple of beats leak through),
  // then 40 silent ticks (guaranteed missed windows at deadline 10).
  for (SimTime cycle = 0; cycle < 3; ++cycle) {
    sim.schedule_at(100 + cycle * 50, [&service] {
      service.link_to(0).heal();
      service.link_from(0).heal();
    });
    sim.schedule_at(110 + cycle * 50, [&service] {
      service.link_to(0).partition();
      service.link_from(0).partition();
    });
  }
  sim.run_until(248);
  // The count restarted at every miss: no cycle reached 5 consecutive
  // beats, so the flapping member is still out (pre-fix, the stale
  // credit summed across cycles and reinstated it here).
  EXPECT_EQ(service.counters().reinstatements, 0u);
  EXPECT_FALSE(service.membership().up(service.replica_name(0)));

  // A sustained heal is still the legitimate path back in.
  service.link_to(0).heal();
  service.link_from(0).heal();
  sim.run_until(400);
  EXPECT_EQ(service.counters().reinstatements, 1u);
  EXPECT_TRUE(service.membership().up(service.replica_name(0)));
  EXPECT_TRUE(service.eligible(0));
#if !defined(AFT_OBS_DISABLED)
  // The resets themselves are visible in the trace plane.
  EXPECT_NE(sink.jsonl().find(R"("event":"heal-reset")"), std::string::npos);
#endif
}

TEST(ClusterTest, PersistentValueCorrupterIsSuspectedUntilRepaired) {
  Simulator sim;
  bool corrupting = true;
  ReplicatedService service(
      sim, small_params(5),
      [&corrupting](Ballot input, std::size_t replica) {
        const Ballot correct = correct_value(input);
        if (corrupting && replica == 0) return correct + 13;
        return correct;
      },
      19);
  service.start();

  constexpr std::uint64_t kRounds = 12;
  for (std::uint64_t k = 0; k < kRounds; ++k) {
    sim.schedule_at(k * kRoundInterval, [&service] { service.invoke(42); });
  }
  sim.run_until(kRounds * kRoundInterval + 300);

  // The wire never misbehaved — membership still reports the corrupter up
  // — but the ballot discriminator retired it at the vote layer, so it no
  // longer counts as live.
  EXPECT_EQ(service.counters().evictions, 0u);
  EXPECT_TRUE(service.membership().up(service.replica_name(0)));
  EXPECT_EQ(service.live_count(), 4u);
  EXPECT_TRUE(service.suspect(0));
  EXPECT_FALSE(service.eligible(0));
  EXPECT_EQ(service.counters().suspects, 1u);
  EXPECT_GT(service.counters().substituted_rounds, 0u);

  // Sect. 3.2 unit replacement: fix the fault, clear the evidence.
  corrupting = false;
  service.repair(0);
  EXPECT_FALSE(service.suspect(0));
  EXPECT_TRUE(service.eligible(0));
  EXPECT_EQ(service.live_count(), 5u);
  EXPECT_EQ(service.counters().cleared, 1u);

  // The repaired replica votes with the majority again.
  std::vector<RoundReport> reports;
  sim.schedule_at(sim.now() + kRoundInterval, [&service, &reports] {
    service.invoke(7, [&reports](InvokeOutcome, const RoundReport& r) {
      reports.push_back(r);
    });
  });
  sim.run_until(sim.now() + kRoundInterval + 200);
  ASSERT_EQ(reports.size(), 1u);
  EXPECT_TRUE(reports[0].success);
  EXPECT_EQ(reports[0].value, correct_value(7));
}

// --- Campaign determinism ------------------------------------------------------

/// Per-job outcome tallies: rounds, no-quorum, dissent rounds, evictions,
/// reinstatements, raises.
using Outcome = std::array<std::uint64_t, 6>;

Outcome run_job(std::size_t job) {
  const std::uint64_t seed = 77000 + 23 * static_cast<std::uint64_t>(job);
  Simulator sim;
  bool corrupting = false;
  ReplicatedService service(
      sim, small_params(5),
      [&corrupting](Ballot input, std::size_t replica) {
        const Ballot correct = correct_value(input);
        if (corrupting && replica == 1) return correct + 5;
        return correct;
      },
      seed);
  service.start();

  constexpr std::uint64_t kRounds = 15;
  for (std::uint64_t k = 0; k < kRounds; ++k) {
    sim.schedule_at(k * kRoundInterval, [&service] { service.invoke(42); });
  }
  switch (job % 4) {
    case 0:
      break;  // clean baseline
    case 1:  // mid-run partition + heal of replica 0
      sim.schedule_at(100, [&service] {
        service.link_to(0).partition();
        service.link_from(0).partition();
      });
      sim.schedule_at(300, [&service] {
        service.link_to(0).heal();
        service.link_from(0).heal();
      });
      break;
    case 2: {  // lossy wires on replica 2
      sim.schedule_at(100, [&service] {
        LinkFaults lossy = quiet_wire();
        lossy.drop = 0.4;
        service.link_to(2).set_faults(lossy);
        service.link_from(2).set_faults(lossy);
      });
      break;
    }
    case 3:  // value corruption window
      sim.schedule_at(100, [&corrupting] { corrupting = true; });
      sim.schedule_at(300, [&corrupting] { corrupting = false; });
      break;
  }
  sim.run_until(kRounds * kRoundInterval + 300);
  return Outcome{service.counters().rounds,       service.counters().no_quorum,
                 service.counters().dissent_rounds, service.counters().evictions,
                 service.counters().reinstatements,
                 service.switchboard().raises()};
}

#if !defined(AFT_OBS_DISABLED)

struct CampaignOutput {
  std::string trace;
  std::string metrics;
  std::vector<Outcome> outcomes;
};

CampaignOutput run_matrix(unsigned threads) {
  constexpr std::size_t kJobs = 8;
  CampaignOutput output;
  aft::obs::TraceSink sink;
  aft::obs::MetricsRegistry metrics;
  {
    const aft::obs::ScopedObs scope(&sink, &metrics);
    output.outcomes = aft::util::run_campaigns(
        kJobs, [](std::size_t job) { return run_job(job); }, threads);
  }
  output.trace = sink.jsonl();
  output.metrics = metrics.json();
  return output;
}

TEST(ClusterDeterminismTest, CampaignIsByteIdenticalAcrossThreadCounts) {
  const CampaignOutput serial = run_matrix(1);
  const CampaignOutput parallel = run_matrix(8);
  EXPECT_EQ(parallel.outcomes, serial.outcomes);
  EXPECT_EQ(parallel.metrics, serial.metrics);
  EXPECT_EQ(parallel.trace, serial.trace);

  // Every job completed its full round schedule, and the degraded jobs
  // actually exercised the adaptation paths.
  for (const Outcome& out : serial.outcomes) {
    EXPECT_EQ(out[0], 15u);
  }
  std::uint64_t dissent = 0;
  std::uint64_t evictions = 0;
  for (const Outcome& out : serial.outcomes) {
    dissent += out[2];
    evictions += out[3];
  }
  EXPECT_GT(dissent, 0u);
  EXPECT_GT(evictions, 0u);
  EXPECT_NE(serial.trace.find("cluster.replica"), std::string::npos);
}

// --- Causality plane -----------------------------------------------------------

TEST(ClusterTraceTest, RaiseChainsBackToTheDroppedHeartbeatFrame) {
  // The acceptance chain, in-process: partition a member, let membership
  // evict it, and verify the switchboard raise's causal ancestry walks —
  // root first — from the physical heartbeat drop through member-down and
  // evict to the disturbance that resized the cluster.
  aft::obs::TraceSink sink;
  std::string jsonl;
  {
    const aft::obs::ScopedObs scope(&sink, nullptr);
    Simulator sim;
    ReplicatedService service(
        sim, small_params(5),
        [](Ballot input, std::size_t) { return correct_value(input); }, 23);
    service.start();
    service.link_to(0).partition();
    service.link_from(0).partition();
    sim.run_until(200);
    EXPECT_EQ(service.switchboard().disturbance_raises(), 1u);
    jsonl = sink.jsonl();
  }

  std::string error;
  const auto trace = aft::tools::parse_trace_data(jsonl, error);
  ASSERT_TRUE(trace.has_value()) << error;

  const aft::tools::TraceEvent* raise = nullptr;
  for (const aft::tools::TraceEvent& e : trace->events) {
    if (e.component == "autonomic.switchboard" && e.event == "raise") {
      raise = &e;
      break;
    }
  }
  ASSERT_NE(raise, nullptr);

  const std::vector<const aft::tools::TraceEvent*> chain =
      aft::tools::causal_chain(*trace, raise->seq);
  ASSERT_GE(chain.size(), 4u);
  auto stage = [&chain](const char* component, const char* event) {
    for (std::size_t i = 0; i < chain.size(); ++i) {
      if (chain[i]->component == component && chain[i]->event == event) {
        return static_cast<std::ptrdiff_t>(i);
      }
    }
    return std::ptrdiff_t{-1};
  };
  const std::ptrdiff_t drop = stage("net.link", "drop");
  const std::ptrdiff_t down = stage("net.membership", "member-down");
  const std::ptrdiff_t evict = stage("cluster.replica", "evict");
  const std::ptrdiff_t disturbance =
      stage("autonomic.switchboard", "disturbance");
  ASSERT_GE(drop, 0);
  ASSERT_GE(down, 0);
  ASSERT_GE(evict, 0);
  ASSERT_GE(disturbance, 0);
  // Root first: physical loss -> verdict -> eviction -> actuation.
  EXPECT_LT(drop, down);
  EXPECT_LT(down, evict);
  EXPECT_LT(evict, disturbance);
  // The root evidence is the member's own heartbeat the wire ate.
  const std::string* kind = chain[static_cast<std::size_t>(drop)]->field("kind");
  ASSERT_NE(kind, nullptr);
  EXPECT_EQ(*kind, "heartbeat");
  // `aft_trace why` renders the same story.
  const std::string why = aft::tools::render_why(*trace, raise->seq);
  EXPECT_NE(why.find("member-down"), std::string::npos);
  EXPECT_NE(why.find("drop"), std::string::npos);
}

TEST(ClusterTraceTest, QueuedInvokeRoundChainsToItsOriginalCaller) {
  // Regression: a queued invoke()'s round must carry the causal context of
  // the caller that enqueued it.  Pre-fix the dequeued round ran under
  // whatever context happened to complete the *previous* round, so
  // `aft_trace why` blamed an unrelated caller for the queued work.
  aft::obs::TraceSink sink;
  std::string jsonl;
  {
    const aft::obs::ScopedObs scope(&sink, nullptr);
    Simulator sim;
    ReplicatedService service(
        sim, small_params(5),
        [](Ballot input, std::size_t) { return correct_value(input); }, 31);
    service.start();
    sim.schedule_at(5, [&service] {
      aft::obs::TraceSink* const s = aft::obs::trace();
      ASSERT_NE(s, nullptr);
      const aft::obs::EventId ambient = s->cause();
      // Caller alpha starts a round immediately.
      const aft::obs::EventId alpha =
          s->emit("test.caller", "alpha", {{"caller", "alpha"}});
      s->set_cause(alpha);
      service.invoke(1);
      s->set_cause(ambient);
      // Caller beta arrives while alpha's round is in flight: queued.
      const aft::obs::EventId beta =
          s->emit("test.caller", "beta", {{"caller", "beta"}});
      s->set_cause(beta);
      service.invoke(2);
      s->set_cause(ambient);
    });
    sim.run_until(300);
    EXPECT_EQ(service.counters().rounds, 2u);
    jsonl = sink.jsonl();
  }

  std::string error;
  const auto trace = aft::tools::parse_trace_data(jsonl, error);
  ASSERT_TRUE(trace.has_value()) << error;

  const aft::tools::TraceEvent* second_round = nullptr;
  for (const aft::tools::TraceEvent& e : trace->events) {
    if (e.component != "cluster.coordinator" || e.event != "round") continue;
    const std::string* round = e.field("round");
    if (round != nullptr && *round == "2") {
      second_round = &e;
      break;
    }
  }
  ASSERT_NE(second_round, nullptr);

  const std::vector<const aft::tools::TraceEvent*> chain =
      aft::tools::causal_chain(*trace, second_round->seq);
  bool saw_beta = false;
  bool saw_alpha = false;
  for (const aft::tools::TraceEvent* e : chain) {
    if (e->component != "test.caller") continue;
    saw_beta = saw_beta || e->event == "beta";
    saw_alpha = saw_alpha || e->event == "alpha";
  }
  EXPECT_TRUE(saw_beta);    // the round chains to the caller that queued it
  EXPECT_FALSE(saw_alpha);  // ...and not to the earlier, unrelated caller
  // `aft_trace why` tells the same story.
  const std::string why = aft::tools::render_why(*trace, second_round->seq);
  EXPECT_NE(why.find("beta"), std::string::npos);
  EXPECT_EQ(why.find("alpha"), std::string::npos);
}

#else  // AFT_OBS_DISABLED

TEST(ClusterDeterminismTest, OutcomesAreIdenticalAcrossThreadCounts) {
  constexpr std::size_t kJobs = 8;
  const auto serial = aft::util::run_campaigns(
      kJobs, [](std::size_t job) { return run_job(job); }, 1);
  const auto parallel = aft::util::run_campaigns(
      kJobs, [](std::size_t job) { return run_job(job); }, 8);
  EXPECT_EQ(parallel, serial);
}

#endif  // AFT_OBS_DISABLED

}  // namespace
