// Unit tests for the simulated hardware platform: Word72 bit surgery,
// memory chips with SEU/SEL/SEFI/stuck-at failure semantics, fault
// injectors, SPD records and machine introspection.
#include <gtest/gtest.h>

#include "hw/fault_injector.hpp"
#include "hw/machine.hpp"
#include "hw/memory_chip.hpp"
#include "hw/spd.hpp"

namespace {

using namespace aft::hw;

// --- Word72 -----------------------------------------------------------------

TEST(Word72Test, BitOpsAcrossDataAndCheck) {
  Word72 w{};
  for (unsigned b : {0u, 5u, 63u, 64u, 71u}) {
    EXPECT_FALSE(get_bit(w, b));
    set_bit(w, b, true);
    EXPECT_TRUE(get_bit(w, b));
  }
  EXPECT_EQ(w.data, (std::uint64_t{1} | (std::uint64_t{1} << 5) | (std::uint64_t{1} << 63)));
  EXPECT_EQ(w.check, 0x81);
  flip_bit(w, 5);
  EXPECT_FALSE(get_bit(w, 5));
  flip_bit(w, 71);
  EXPECT_FALSE(get_bit(w, 71));
}

TEST(Word72Test, FlipIsInvolution) {
  Word72 w{0xDEADBEEFCAFEBABEULL, 0x5A};
  const Word72 original = w;
  for (unsigned b = 0; b < 72; ++b) {
    flip_bit(w, b);
    flip_bit(w, b);
  }
  EXPECT_EQ(w, original);
}

// --- MemoryChip ---------------------------------------------------------------

TEST(MemoryChipTest, ZeroSizeRejected) {
  EXPECT_THROW(MemoryChip(0), std::invalid_argument);
}

TEST(MemoryChipTest, ReadWriteRoundTrip) {
  MemoryChip chip(16);
  chip.write(3, Word72{0x1234, 0x7});
  const DeviceRead r = chip.read(3);
  ASSERT_TRUE(r.available);
  EXPECT_EQ(r.word, (Word72{0x1234, 0x7}));
}

TEST(MemoryChipTest, OutOfRangeThrows) {
  MemoryChip chip(4);
  EXPECT_THROW((void)chip.read(4), std::out_of_range);
  EXPECT_THROW(chip.write(4, Word72{}), std::out_of_range);
  EXPECT_THROW(chip.inject_bit_flip(0, 72), std::out_of_range);
}

TEST(MemoryChipTest, BitFlipChangesStoredWord) {
  MemoryChip chip(4);
  chip.write(0, Word72{0, 0});
  chip.inject_bit_flip(0, 10);
  EXPECT_EQ(chip.read(0).word.data, std::uint64_t{1} << 10);
}

TEST(MemoryChipTest, StuckAtOverridesWrites) {
  MemoryChip chip(4);
  chip.inject_stuck_at(1, 0, true);
  chip.write(1, Word72{0, 0});
  EXPECT_EQ(chip.read(1).word.data & 1u, 1u);
  chip.inject_stuck_at(1, 1, false);
  chip.write(1, Word72{0xFF, 0});
  const auto word = chip.read(1).word;
  EXPECT_EQ(word.data & 0b11, 0b01u);  // bit0 stuck 1, bit1 stuck 0
  EXPECT_EQ(chip.stuck_bit_count(), 2u);
}

TEST(MemoryChipTest, LatchUpDestroysDataAndAvailability) {
  MemoryChip chip(8);
  chip.write(2, Word72{42, 0});
  chip.inject_latch_up();
  EXPECT_EQ(chip.state(), ChipState::kLatchedUp);
  EXPECT_FALSE(chip.read(2).available);
  chip.power_cycle();
  EXPECT_EQ(chip.state(), ChipState::kOperational);
  EXPECT_EQ(chip.read(2).word, Word72{});  // data lost
}

TEST(MemoryChipTest, SefiHaltsUntilPowerCycle) {
  MemoryChip chip(8);
  chip.inject_sefi();
  EXPECT_EQ(chip.state(), ChipState::kSefiHalt);
  EXPECT_FALSE(chip.read(0).available);
  chip.write(0, Word72{7, 0});  // absorbed
  chip.power_cycle();
  EXPECT_TRUE(chip.read(0).available);
  EXPECT_EQ(chip.power_cycles(), 1u);
}

TEST(MemoryChipTest, StuckAtSurvivesPowerCycle) {
  MemoryChip chip(4);
  chip.inject_stuck_at(0, 3, true);
  chip.inject_latch_up();
  chip.power_cycle();
  chip.write(0, Word72{0, 0});
  EXPECT_TRUE(get_bit(chip.read(0).word, 3));
}

TEST(MemoryChipTest, WritesWhileUnavailableAreAbsorbed) {
  MemoryChip chip(4);
  chip.inject_latch_up();
  chip.write(0, Word72{99, 0});
  chip.power_cycle();
  EXPECT_EQ(chip.read(0).word.data, 0u);
}

TEST(MemoryChipTest, InjectionWhileUnavailableIgnored) {
  MemoryChip chip(4);
  chip.inject_latch_up();
  chip.inject_bit_flip(0, 1);  // no effect, no crash
  chip.power_cycle();
  EXPECT_EQ(chip.read(0).word.data, 0u);
}

TEST(MemoryChipTest, AccountingCounters) {
  MemoryChip chip(4);
  chip.write(0, Word72{});
  (void)chip.read(0);
  (void)chip.read(1);
  EXPECT_EQ(chip.writes(), 1u);
  EXPECT_EQ(chip.reads(), 2u);
}

// --- MemoryChip block API -----------------------------------------------------

TEST(MemoryChipTest, BlockRoundTripMatchesPerWordAccess) {
  MemoryChip chip(16);
  Word72 in[6];
  for (unsigned i = 0; i < 6; ++i) in[i] = Word72{0x100u + i, static_cast<std::uint8_t>(i)};
  chip.write_block(3, 6, in);
  Word72 out[6];
  ASSERT_TRUE(chip.read_block(3, 6, out));
  for (std::size_t i = 0; i < 6; ++i) {
    EXPECT_EQ(out[i], in[i]);
    EXPECT_EQ(chip.read(3 + i).word, in[i]);
  }
}

TEST(MemoryChipTest, BlockReadAppliesStuckBitsLikePerWordRead) {
  MemoryChip chip(8);
  chip.inject_stuck_at(2, 5, true);
  chip.inject_stuck_at(4, 70, true);
  chip.inject_stuck_at(7, 0, true);  // outside the block below
  Word72 zeros[4] = {};
  chip.write_block(1, 4, zeros);
  Word72 out[4];
  ASSERT_TRUE(chip.read_block(1, 4, out));
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(out[i], chip.read(1 + i).word) << "word " << 1 + i;
  }
  EXPECT_TRUE(get_bit(out[1], 5));    // addr 2
  EXPECT_TRUE(get_bit(out[3], 70));   // addr 4
}

TEST(MemoryChipTest, BlockBoundsThrow) {
  MemoryChip chip(8);
  Word72 buf[9];
  EXPECT_THROW((void)chip.read_block(1, 8, buf), std::out_of_range);
  EXPECT_THROW((void)chip.read_block(0, 9, buf), std::out_of_range);
  // addr + n would overflow size_t: the bounds check must not wrap.
  EXPECT_THROW((void)chip.read_block(~std::size_t{0}, 2, buf), std::out_of_range);
  EXPECT_THROW(chip.write_block(8, 1, buf), std::out_of_range);
  EXPECT_NO_THROW((void)chip.read_block(0, 8, buf));
}

TEST(MemoryChipTest, BlockAccessCountsEveryWord) {
  MemoryChip chip(16);
  Word72 buf[5] = {};
  chip.write_block(0, 5, buf);
  (void)chip.read_block(2, 3, buf);
  EXPECT_EQ(chip.writes(), 5u);
  EXPECT_EQ(chip.reads(), 3u);
}

TEST(MemoryChipTest, BlockAccessWhileUnavailable) {
  MemoryChip chip(4);
  chip.write(1, Word72{7, 0});
  chip.inject_latch_up();
  Word72 buf[2] = {Word72{1, 1}, Word72{2, 2}};
  EXPECT_FALSE(chip.read_block(0, 2, buf));  // no data handed out
  chip.write_block(0, 2, buf);               // absorbed, like write()
  chip.power_cycle();
  EXPECT_EQ(chip.read(0).word, Word72{});
  EXPECT_EQ(chip.read(1).word, Word72{});
}

// --- MemoryChip resize (hot swap) ---------------------------------------------

TEST(MemoryChipTest, ResizeZeroRejected) {
  MemoryChip chip(4);
  EXPECT_THROW(chip.resize(0), std::invalid_argument);
}

TEST(MemoryChipTest, ResizeZeroesContentsAndRestoresAvailability) {
  MemoryChip chip(8);
  chip.write(2, Word72{0xAB, 0x1});
  chip.inject_sefi();
  chip.resize(4);
  EXPECT_EQ(chip.state(), ChipState::kOperational);
  EXPECT_EQ(chip.size_words(), 4u);
  EXPECT_EQ(chip.read(2).word, Word72{});  // replacement part starts blank
  EXPECT_THROW((void)chip.read(4), std::out_of_range);
}

TEST(MemoryChipTest, ResizeDropsOutOfRangeStuckDefects) {
  MemoryChip chip(8);
  chip.inject_stuck_at(1, 3, true);   // survives (in range after shrink)
  chip.inject_stuck_at(6, 9, true);   // dropped (cell no longer exists)
  chip.resize(4);
  EXPECT_TRUE(get_bit(chip.read(1).word, 3));
  chip.resize(8);  // growing back must not resurrect the dropped defect
  chip.write(6, Word72{});
  EXPECT_FALSE(get_bit(chip.read(6).word, 9));
}

// --- FaultProfile / FaultInjector ---------------------------------------------

TEST(FaultProfileTest, CanonicalProfilesOrdering) {
  EXPECT_TRUE(profiles::stable().benign());
  EXPECT_FALSE(profiles::cmos().benign());
  EXPECT_GT(profiles::sdram_sel_seu().seu_rate, profiles::cmos().seu_rate);
  EXPECT_GT(profiles::sdram_sel().sel_rate, 0.0);
  EXPECT_GT(profiles::sdram_sel_seu().sefi_rate, 0.0);
  EXPECT_GT(profiles::cmos_aging().stuck_rate, 0.0);
  EXPECT_EQ(profiles::cmos().sel_rate, 0.0);
}

TEST(FaultInjectorTest, StableProfileInjectsNothing) {
  MemoryChip chip(64);
  FaultInjector inj(chip, profiles::stable(), 1);
  inj.run(100000);
  EXPECT_EQ(inj.log().total(), 0u);
}

TEST(FaultInjectorTest, SeuCountScalesWithRate) {
  MemoryChip chip(64);
  FaultProfile p;
  p.seu_rate = 0.01;
  FaultInjector inj(chip, p, 2);
  inj.run(100000);
  EXPECT_NEAR(static_cast<double>(inj.log().seu), 1000.0, 150.0);
}

TEST(FaultInjectorTest, Deterministic) {
  MemoryChip a(64), b(64);
  FaultInjector ia(a, profiles::sdram_sel_seu(), 42);
  FaultInjector ib(b, profiles::sdram_sel_seu(), 42);
  ia.run(50000);
  ib.run(50000);
  EXPECT_EQ(ia.log().seu, ib.log().seu);
  EXPECT_EQ(ia.log().sel, ib.log().sel);
  EXPECT_EQ(ia.log().sefi, ib.log().sefi);
}

TEST(FaultInjectorTest, SelLeavesChipLatched) {
  MemoryChip chip(16);
  FaultProfile p;
  p.sel_rate = 1.0;  // certain latch-up on the first tick
  FaultInjector inj(chip, p, 3);
  EXPECT_TRUE(inj.tick());
  EXPECT_EQ(chip.state(), ChipState::kLatchedUp);
  EXPECT_EQ(inj.log().sel, 1u);
}

TEST(FaultInjectorTest, MultiBitFractionProducesAdjacentFlips) {
  MemoryChip chip(16);
  FaultProfile p;
  p.seu_rate = 1.0;
  p.multi_bit_fraction = 1.0;
  FaultInjector inj(chip, p, 4);
  inj.run(100);
  EXPECT_EQ(inj.log().multi_bit, inj.log().seu);
}

TEST(FaultInjectorTest, ProfileCanBeSwappedMidCampaign) {
  MemoryChip chip(16);
  FaultInjector inj(chip, profiles::stable(), 5);
  inj.run(1000);
  EXPECT_EQ(inj.log().total(), 0u);
  FaultProfile p;
  p.seu_rate = 1.0;
  inj.set_profile(p);
  inj.run(10);
  EXPECT_EQ(inj.log().seu, 10u);
}

// --- SPD / Machine --------------------------------------------------------------

TEST(SpdTest, LshwStanzaContainsIdentityFields) {
  const SpdRecord spd{.vendor = "CE00000000000000",
                      .model = "DDR-533-1G",
                      .serial = "F504F679",
                      .lot = "L1",
                      .size_mib = 1024,
                      .width_bits = 64,
                      .clock_mhz = 533,
                      .technology = MemoryTechnology::kDdrSdram,
                      .slot = "DIMM_A"};
  const std::string s = spd.lshw_stanza(0);
  EXPECT_NE(s.find("CE00000000000000"), std::string::npos);
  EXPECT_NE(s.find("F504F679"), std::string::npos);
  EXPECT_NE(s.find("DIMM_A"), std::string::npos);
  EXPECT_NE(s.find("1024MiB"), std::string::npos);
  EXPECT_NE(s.find("533MHz"), std::string::npos);
  EXPECT_NE(s.find("DDR Synchronous"), std::string::npos);
}

TEST(MachineTest, LaptopMatchesFig2Shape) {
  const Machine m = machines::laptop();
  EXPECT_EQ(m.bank_count(), 2u);
  EXPECT_EQ(m.total_mib(), 1536u);  // 1 GiB + 512 MiB, as in Fig. 2
  const std::string dump = m.lshw_memory_dump();
  EXPECT_NE(dump.find("System Memory"), std::string::npos);
  EXPECT_NE(dump.find("1536MiB"), std::string::npos);
  EXPECT_NE(dump.find("bank:0"), std::string::npos);
  EXPECT_NE(dump.find("bank:1"), std::string::npos);
}

TEST(MachineTest, SatelliteHasFourSdramBanks) {
  const Machine m = machines::satellite_obc();
  EXPECT_EQ(m.bank_count(), 4u);
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(m.bank(i).spd.technology, MemoryTechnology::kSdram);
    EXPECT_EQ(m.bank(i).spd.lot, "L2008-03");
  }
}

TEST(MachineTest, BankIndexOutOfRangeThrows) {
  Machine m("empty");
  EXPECT_THROW((void)m.bank(0), std::out_of_range);
}

TEST(MachineTest, ResetUnavailableBanksPowerCyclesOnlyVictims) {
  Machine m = machines::satellite_obc(64);
  m.bank(1).chip->inject_latch_up();
  m.bank(3).chip->inject_sefi();
  EXPECT_EQ(m.reset_unavailable_banks(), 2u);
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(m.bank(i).chip->state(), ChipState::kOperational);
  }
  EXPECT_EQ(m.bank(0).chip->power_cycles(), 0u);
  EXPECT_EQ(m.bank(1).chip->power_cycles(), 1u);
}

}  // namespace
