// Tests for the ACCADA-like middleware substrate: components, the
// reflective DAG, the event bus, and architecture execution.
#include <gtest/gtest.h>

#include <memory>
#include <span>
#include <string>
#include <vector>

#include "arch/component.hpp"
#include "arch/dag.hpp"
#include "arch/event_bus.hpp"
#include "arch/middleware.hpp"

namespace {

using namespace aft::arch;

// --- ScriptedComponent --------------------------------------------------------

TEST(ScriptedComponentTest, IdentityDefault) {
  ScriptedComponent c("c1");
  const auto r = c.process(42);
  EXPECT_TRUE(r.ok);
  EXPECT_EQ(r.value, 42);
  EXPECT_EQ(c.invocations(), 1u);
  EXPECT_EQ(c.failures(), 0u);
}

TEST(ScriptedComponentTest, CustomFunction) {
  ScriptedComponent c("dbl", [](std::int64_t v) { return v * 2; });
  EXPECT_EQ(c.process(21).value, 42);
}

TEST(ScriptedComponentTest, TransientFailures) {
  ScriptedComponent c("c");
  c.fail_next(2);
  EXPECT_FALSE(c.process(1).ok);
  EXPECT_FALSE(c.process(1).ok);
  EXPECT_TRUE(c.process(1).ok);
  EXPECT_EQ(c.failures(), 2u);
}

TEST(ScriptedComponentTest, PermanentFaultAndRepair) {
  ScriptedComponent c("c");
  c.fail_always();
  for (int i = 0; i < 5; ++i) EXPECT_FALSE(c.process(0).ok);
  EXPECT_TRUE(c.permanently_faulty());
  c.repair();
  EXPECT_TRUE(c.process(0).ok);
}

TEST(ScriptedComponentTest, CorruptionChangesValueSilently) {
  ScriptedComponent c("c");
  c.corrupt_next(1, 100);
  const auto r = c.process(5);
  EXPECT_TRUE(r.ok);
  EXPECT_EQ(r.value, 105);
  EXPECT_EQ(c.process(5).value, 5);
}

// --- ReflectiveDag -------------------------------------------------------------

DagSnapshot chain(const std::string& name) {
  return DagSnapshot{name,
                     {"c1", "c2", "c3", "c4"},
                     {{"c1", "c2"}, {"c2", "c3"}, {"c3", "c4"}}};
}

TEST(DagTest, ValidateRejectsMalformedSnapshots) {
  EXPECT_NE(ReflectiveDag::validate(
                DagSnapshot{"bad", {"a", "a"}, {}}),
            "");
  EXPECT_NE(ReflectiveDag::validate(
                DagSnapshot{"bad", {"a"}, {{"a", "ghost"}}}),
            "");
  EXPECT_NE(ReflectiveDag::validate(
                DagSnapshot{"bad", {"a", "b"}, {{"a", "b"}, {"b", "a"}}}),
            "");
  EXPECT_EQ(ReflectiveDag::validate(chain("ok")), "");
}

TEST(DagTest, InjectRejectsCycle) {
  ReflectiveDag dag;
  EXPECT_THROW(dag.inject(DagSnapshot{"c", {"a", "b"}, {{"a", "b"}, {"b", "a"}}}),
               std::invalid_argument);
  EXPECT_TRUE(dag.empty());
}

TEST(DagTest, TopologicalOrderOfChain) {
  ReflectiveDag dag;
  dag.inject(chain("D1"));
  EXPECT_EQ(dag.topological_order(),
            (std::vector<std::string>{"c1", "c2", "c3", "c4"}));
  EXPECT_EQ(dag.sources(), std::vector<std::string>{"c1"});
  EXPECT_EQ(dag.sinks(), std::vector<std::string>{"c4"});
  EXPECT_EQ(dag.predecessors("c3"), std::vector<std::string>{"c2"});
  EXPECT_EQ(dag.successors("c3"), std::vector<std::string>{"c4"});
  EXPECT_TRUE(dag.has_node("c2"));
  EXPECT_FALSE(dag.has_node("zz"));
}

TEST(DagTest, DiamondTopology) {
  ReflectiveDag dag;
  dag.inject(DagSnapshot{"diamond",
                         {"s", "l", "r", "t"},
                         {{"s", "l"}, {"s", "r"}, {"l", "t"}, {"r", "t"}}});
  const auto order = dag.topological_order();
  ASSERT_EQ(order.size(), 4u);
  EXPECT_EQ(order.front(), "s");
  EXPECT_EQ(order.back(), "t");
  EXPECT_EQ(dag.predecessors("t").size(), 2u);
}

TEST(DagTest, InjectionBumpsVersionAndRenames) {
  ReflectiveDag dag;
  dag.inject(chain("D1"));
  EXPECT_EQ(dag.version(), 1u);
  EXPECT_EQ(dag.snapshot_name(), "D1");
  dag.inject(chain("D2"));
  EXPECT_EQ(dag.version(), 2u);
  EXPECT_EQ(dag.snapshot_name(), "D2");
}

TEST(DagTest, DiffShowsFig3Transition) {
  // Fig. 3: D1 has c3 (redoing); D2 replaces it with c3.1 primary +
  // c3.2 secondary.
  const DagSnapshot d1 = chain("D1");
  const DagSnapshot d2{"D2",
                       {"c1", "c2", "c3.1", "c3.2", "c4"},
                       {{"c1", "c2"},
                        {"c2", "c3.1"},
                        {"c3.1", "c4"},
                        {"c2", "c3.2"},
                        {"c3.2", "c4"}}};
  const std::string diff = ReflectiveDag::diff(d1, d2);
  EXPECT_NE(diff.find("+ node c3.1"), std::string::npos);
  EXPECT_NE(diff.find("+ node c3.2"), std::string::npos);
  EXPECT_NE(diff.find("- node c3"), std::string::npos);
  EXPECT_NE(diff.find("transition D1 -> D2"), std::string::npos);
}

// --- EventBus ------------------------------------------------------------------

TEST(EventBusTest, TopicDelivery) {
  EventBus bus;
  int a_count = 0, b_count = 0;
  bus.subscribe("a", [&](const Message&) { ++a_count; });
  bus.subscribe("b", [&](const Message&) { ++b_count; });
  EXPECT_EQ(bus.publish(Message{"a", "src", ""}), 1u);
  EXPECT_EQ(bus.publish(Message{"a", "src", ""}), 1u);
  EXPECT_EQ(bus.publish(Message{"c", "src", ""}), 0u);
  EXPECT_EQ(a_count, 2);
  EXPECT_EQ(b_count, 0);
  EXPECT_EQ(bus.published(), 3u);
}

TEST(EventBusTest, WildcardSeesEverything) {
  EventBus bus;
  std::vector<std::string> topics;
  bus.subscribe_all([&](const Message& m) { topics.push_back(m.topic); });
  bus.publish(Message{"x", "", ""});
  bus.publish(Message{"y", "", ""});
  EXPECT_EQ(topics, (std::vector<std::string>{"x", "y"}));
}

TEST(EventBusTest, UnsubscribeStopsDelivery) {
  EventBus bus;
  int n = 0;
  const auto id = bus.subscribe("t", [&](const Message&) { ++n; });
  bus.publish(Message{"t", "", ""});
  bus.unsubscribe(id);
  bus.publish(Message{"t", "", ""});
  EXPECT_EQ(n, 1);
  EXPECT_EQ(bus.subscriber_count(), 0u);
}

TEST(EventBusTest, HandlerMaySubscribeDuringDelivery) {
  EventBus bus;
  int late = 0;
  bus.subscribe("t", [&](const Message&) {
    bus.subscribe("t", [&](const Message&) { ++late; });
  });
  bus.publish(Message{"t", "", ""});  // must not crash or deliver to the new sub
  EXPECT_EQ(late, 0);
  bus.publish(Message{"t", "", ""});
  EXPECT_EQ(late, 1);
}

TEST(EventBusTest, UnsubscribeErasesEmptyTopicBuckets) {
  // Subscribe/unsubscribe churn over many distinct topics used to leave one
  // empty vector per topic in the map forever — unbounded growth for a
  // long-lived bus fed by ephemeral components.
  EventBus bus;
  for (int i = 0; i < 100; ++i) {
    const auto id = bus.subscribe("topic-" + std::to_string(i),
                                  [](const Message&) {});
    bus.unsubscribe(id);
  }
  EXPECT_EQ(bus.topic_count(), 0u);
  EXPECT_EQ(bus.subscriber_count(), 0u);

  // A topic with a surviving subscriber keeps its bucket.
  bus.subscribe("keep", [](const Message&) {});
  const auto gone = bus.subscribe("keep", [](const Message&) {});
  bus.unsubscribe(gone);
  EXPECT_EQ(bus.topic_count(), 1u);
}

TEST(EventBusTest, HandlerUnsubscribedDuringDeliveryIsSkipped) {
  // publish() iterates a snapshot; a handler unsubscribed by an *earlier*
  // handler of the same publish used to be invoked anyway — delivery to a
  // subscriber that had already said goodbye.
  EventBus bus;
  int second_calls = 0;
  EventBus::SubscriptionId second_id = 0;
  bus.subscribe("t", [&](const Message&) { bus.unsubscribe(second_id); });
  second_id = bus.subscribe("t", [&](const Message&) { ++second_calls; });
  const std::size_t delivered = bus.publish(Message{"t", "", ""});
  EXPECT_EQ(second_calls, 0);
  EXPECT_EQ(delivered, 1u);
}

TEST(EventBusTest, WildcardUnsubscribedDuringDeliveryIsSkipped) {
  EventBus bus;
  int wildcard_calls = 0;
  EventBus::SubscriptionId wc_id = 0;
  bus.subscribe("t", [&](const Message&) { bus.unsubscribe(wc_id); });
  wc_id = bus.subscribe_all([&](const Message&) { ++wildcard_calls; });
  bus.publish(Message{"t", "", ""});
  EXPECT_EQ(wildcard_calls, 0);
}

TEST(EventBusTest, UnknownIdUnsubscribeIsHarmless) {
  EventBus bus;
  bus.subscribe("t", [](const Message&) {});
  bus.unsubscribe(9999);  // never issued
  EXPECT_EQ(bus.subscriber_count(), 1u);
  EXPECT_EQ(bus.topic_count(), 1u);
}

TEST(EventBusTest, InterningIsIdempotentAndDense) {
  EventBus bus;
  const TopicId a = bus.intern("alpha");
  const TopicId b = bus.intern("beta");
  EXPECT_NE(a, b);
  EXPECT_EQ(bus.intern("alpha"), a);
  EXPECT_EQ(bus.find_topic("alpha"), a);
  EXPECT_EQ(bus.find_topic("never-seen"), kNoTopic);
  EXPECT_EQ(bus.topic_name(a), "alpha");
  EXPECT_EQ(bus.topic_name(b), "beta");
  EXPECT_EQ(bus.interned_topics(), 2u);
}

TEST(EventBusTest, PublishByIdMatchesPublishByName) {
  EventBus bus;
  std::vector<std::string> seen;
  bus.subscribe("t", [&](const Message& m) { seen.push_back(m.payload); });
  const TopicId t = bus.find_topic("t");
  ASSERT_NE(t, kNoTopic);
  EXPECT_EQ(bus.publish(Message{"t", "s", "by-name"}), 1u);
  EXPECT_EQ(bus.publish(t, Message{"t", "s", "by-id"}), 1u);
  EXPECT_EQ(seen, (std::vector<std::string>{"by-name", "by-id"}));
}

TEST(EventBusTest, PublishUnknownTopicReachesWildcardWithoutInterning) {
  EventBus bus;
  int wildcard = 0;
  bus.subscribe_all([&](const Message&) { ++wildcard; });
  const std::size_t before = bus.interned_topics();
  EXPECT_EQ(bus.publish(Message{"unseen", "", ""}), 1u);
  EXPECT_EQ(wildcard, 1);
  // Publishing must not grow the topic table: bus memory stays bounded by
  // subscribed topics even under an unbounded stream of novel topic names.
  EXPECT_EQ(bus.interned_topics(), before);
  EXPECT_EQ(bus.find_topic("unseen"), kNoTopic);
}

TEST(EventBusTest, PublishBatchDeliversPerMessageInOrder) {
  EventBus bus;
  std::vector<std::string> log;
  bus.subscribe("t", [&](const Message& m) { log.push_back("t:" + m.payload); });
  bus.subscribe_all([&](const Message& m) { log.push_back("*:" + m.payload); });
  const std::vector<Message> batch = {Message{"t", "", "1"},
                                      Message{"t", "", "2"}};
  const TopicId t = bus.find_topic("t");
  // Topic subscribers then wildcard, per message — same order as publish().
  EXPECT_EQ(bus.publish_batch(t, std::span<const Message>(batch)), 4u);
  EXPECT_EQ(log,
            (std::vector<std::string>{"t:1", "*:1", "t:2", "*:2"}));
  EXPECT_EQ(bus.published(), 2u);
}

TEST(EventBusTest, MixedTopicBatchGroupsConsecutiveRuns) {
  EventBus bus;
  std::vector<std::string> log;
  bus.subscribe("a", [&](const Message& m) { log.push_back("a:" + m.payload); });
  bus.subscribe("b", [&](const Message& m) { log.push_back("b:" + m.payload); });
  const std::vector<Message> batch = {
      Message{"a", "", "1"}, Message{"a", "", "2"}, Message{"b", "", "3"},
      Message{"c", "", "4"}, Message{"a", "", "5"}};
  EXPECT_EQ(bus.publish_batch(std::span<const Message>(batch)), 4u);
  EXPECT_EQ(log, (std::vector<std::string>{"a:1", "a:2", "b:3", "a:5"}));
  EXPECT_EQ(bus.published(), 5u);
}

TEST(EventBusTest, HandlerSubscribedMidBatchSeesNoneOfTheBatch) {
  EventBus bus;
  int late = 0;
  bus.subscribe("t", [&](const Message&) {
    bus.subscribe("t", [&](const Message&) { ++late; });
  });
  const std::vector<Message> batch = {Message{"t", "", ""},
                                      Message{"t", "", ""}};
  bus.publish_batch(bus.find_topic("t"), std::span<const Message>(batch));
  EXPECT_EQ(late, 0);  // the batch is one publish for churn purposes
  bus.publish(Message{"t", "", ""});
  EXPECT_EQ(late, 2);  // both late subscribers (one per batch message) live now
}

TEST(EventBusTest, HandlerUnsubscribedMidBatchSkipsRestOfBatch) {
  EventBus bus;
  int second_calls = 0;
  EventBus::SubscriptionId second_id = 0;
  bool fired = false;
  bus.subscribe("t", [&](const Message&) {
    if (!fired) {
      fired = true;
      bus.unsubscribe(second_id);
    }
  });
  second_id = bus.subscribe("t", [&](const Message&) { ++second_calls; });
  const std::vector<Message> batch = {Message{"t", "", ""},
                                      Message{"t", "", ""}};
  bus.publish_batch(bus.find_topic("t"), std::span<const Message>(batch));
  EXPECT_EQ(second_calls, 0);
}

TEST(EventBusTest, HandlerMayUnsubscribeItself) {
  EventBus bus;
  int calls = 0;
  EventBus::SubscriptionId self = 0;
  self = bus.subscribe("t", [&](const Message&) {
    ++calls;
    bus.unsubscribe(self);  // destroys this handler only after it returns
  });
  bus.publish(Message{"t", "", ""});
  bus.publish(Message{"t", "", ""});
  EXPECT_EQ(calls, 1);
  EXPECT_EQ(bus.subscriber_count(), 0u);
  EXPECT_EQ(bus.topic_count(), 0u);
}

TEST(EventBusTest, NestedPublishAlsoDefersMidPublishSubscribers) {
  // The tables freeze while *any* publish is on the stack, so a handler
  // subscribed during publish A is not delivered by a publish B nested
  // inside A either — churn applies when the outermost publish unwinds.
  EventBus bus;
  int late = 0;
  bool nested_done = false;
  bus.subscribe("outer", [&](const Message&) {
    bus.subscribe("inner", [&](const Message&) { ++late; });
    bus.publish(Message{"inner", "", ""});
    nested_done = true;
  });
  bus.publish(Message{"outer", "", ""});
  EXPECT_TRUE(nested_done);
  EXPECT_EQ(late, 0);
  bus.publish(Message{"inner", "", ""});
  EXPECT_EQ(late, 1);
}

TEST(MessageArenaTest, RecyclesSlotsAndClearsFields) {
  MessageArena arena;
  const auto s1 = arena.acquire();
  arena[s1] = Message{"topic", "source", "payload"};
  EXPECT_EQ(arena.in_use(), 1u);
  arena.release(s1);
  EXPECT_EQ(arena.in_use(), 0u);
  const std::size_t cap = arena.capacity();

  // LIFO recycling hands the same slot back, fields cleared.
  const auto s2 = arena.acquire();
  EXPECT_EQ(s2, s1);
  EXPECT_TRUE(arena[s2].topic.empty());
  EXPECT_TRUE(arena[s2].source.empty());
  EXPECT_TRUE(arena[s2].payload.empty());
  EXPECT_EQ(arena.capacity(), cap);
  arena.release(s2);
}

// --- Middleware -----------------------------------------------------------------

std::shared_ptr<ScriptedComponent> add_component(Middleware& mw,
                                                 const std::string& id) {
  auto c = std::make_shared<ScriptedComponent>(
      id, [](std::int64_t v) { return v + 1; });
  mw.register_component(c);
  return c;
}

TEST(MiddlewareTest, DuplicateAndNullComponentRejected) {
  Middleware mw;
  add_component(mw, "c1");
  EXPECT_THROW(mw.register_component(std::make_shared<ScriptedComponent>("c1")),
               std::invalid_argument);
  EXPECT_THROW(mw.register_component(nullptr), std::invalid_argument);
}

TEST(MiddlewareTest, DeployRequiresRegisteredComponents) {
  Middleware mw;
  add_component(mw, "c1");
  EXPECT_THROW(mw.deploy(DagSnapshot{"D", {"c1", "ghost"}, {{"c1", "ghost"}}}),
               std::invalid_argument);
}

TEST(MiddlewareTest, ChainExecutionAddsOnePerStage) {
  Middleware mw;
  for (const auto* id : {"c1", "c2", "c3"}) add_component(mw, id);
  mw.deploy(DagSnapshot{"D", {"c1", "c2", "c3"}, {{"c1", "c2"}, {"c2", "c3"}}});
  const auto r = mw.run(10);
  EXPECT_TRUE(r.ok);
  EXPECT_EQ(r.value, 13);
  EXPECT_EQ(mw.runs(), 1u);
  EXPECT_EQ(mw.failed_runs(), 0u);
}

TEST(MiddlewareTest, DiamondSumsPredecessors) {
  Middleware mw;
  for (const auto* id : {"s", "l", "r", "t"}) add_component(mw, id);
  mw.deploy(DagSnapshot{"D",
                        {"s", "l", "r", "t"},
                        {{"s", "l"}, {"s", "r"}, {"l", "t"}, {"r", "t"}}});
  // s: 1 -> 2; l,r: 2 -> 3 each; t: 3+3=6 -> 7.
  const auto r = mw.run(1);
  EXPECT_TRUE(r.ok);
  EXPECT_EQ(r.value, 7);
}

TEST(MiddlewareTest, FaultIsPublishedAndRunFails) {
  Middleware mw;
  add_component(mw, "c1");
  auto c2 = add_component(mw, "c2");
  mw.deploy(DagSnapshot{"D", {"c1", "c2"}, {{"c1", "c2"}}});

  std::vector<std::string> faulty_sources;
  mw.bus().subscribe(kFaultTopic, [&](const Message& m) {
    faulty_sources.push_back(m.source);
  });
  c2->fail_next(1);
  const auto r = mw.run(0);
  EXPECT_FALSE(r.ok);
  EXPECT_EQ(r.component_failures, 1u);
  EXPECT_EQ(faulty_sources, std::vector<std::string>{"c2"});
  EXPECT_EQ(mw.failed_runs(), 1u);
  // Recovered next run.
  EXPECT_TRUE(mw.run(0).ok);
}

TEST(MiddlewareTest, EmptyArchitectureFails) {
  Middleware mw;
  EXPECT_FALSE(mw.run(0).ok);
}

TEST(MiddlewareTest, RedeployReshapesLiveSystem) {
  Middleware mw;
  for (const auto* id : {"c1", "c2", "c3"}) add_component(mw, id);
  mw.deploy(DagSnapshot{"D1", {"c1", "c2"}, {{"c1", "c2"}}});
  EXPECT_EQ(mw.run(0).value, 2);
  mw.deploy(DagSnapshot{"D2", {"c1", "c2", "c3"},
                        {{"c1", "c2"}, {"c2", "c3"}}});
  EXPECT_EQ(mw.run(0).value, 3);
  EXPECT_EQ(mw.dag().snapshot_name(), "D2");
  EXPECT_EQ(mw.dag().version(), 2u);
}

}  // namespace

// --- Degraded-mode execution --------------------------------------------------------

namespace {

TEST(MiddlewareDegradedTest, PassThroughSubstitutionKeepsTheRunAlive) {
  Middleware mw;
  for (const auto* id : {"c1", "c2", "c3"}) add_component(mw, id);
  mw.deploy(DagSnapshot{"D", {"c1", "c2", "c3"}, {{"c1", "c2"}, {"c2", "c3"}}});
  auto c2 = std::dynamic_pointer_cast<ScriptedComponent>(mw.lookup("c2"));
  ASSERT_NE(c2, nullptr);
  c2->fail_next(1);
  const auto r = mw.run(10, Middleware::FailurePolicy::kDegradedValue);
  EXPECT_TRUE(r.ok);
  EXPECT_TRUE(r.degraded);
  EXPECT_EQ(r.component_failures, 1u);
  // c1: 10->11; c2 degraded: passes 11 through; c3: 11->12.
  EXPECT_EQ(r.value, 12);
  ASSERT_EQ(r.trace.size(), 3u);
  EXPECT_EQ(r.trace[1].first, "c2 [degraded]");
}

TEST(MiddlewareDegradedTest, CleanRunIsNotMarkedDegraded) {
  Middleware mw;
  add_component(mw, "c1");
  mw.deploy(DagSnapshot{"D", {"c1"}, {}});
  const auto r = mw.run(1, Middleware::FailurePolicy::kDegradedValue);
  EXPECT_TRUE(r.ok);
  EXPECT_FALSE(r.degraded);
  ASSERT_EQ(r.trace.size(), 1u);
  EXPECT_EQ(r.trace[0], (std::pair<std::string, std::int64_t>{"c1", 2}));
}

TEST(MiddlewareDegradedTest, FaultStillPublishedInDegradedMode) {
  Middleware mw;
  add_component(mw, "c1");
  mw.deploy(DagSnapshot{"D", {"c1"}, {}});
  int faults = 0;
  mw.bus().subscribe(kFaultTopic, [&](const Message&) { ++faults; });
  auto c1 = std::dynamic_pointer_cast<ScriptedComponent>(mw.lookup("c1"));
  c1->fail_next(1);
  const auto r = mw.run(5, Middleware::FailurePolicy::kDegradedValue);
  EXPECT_TRUE(r.ok);
  EXPECT_EQ(faults, 1);  // degraded continuation never hides the fault
}

}  // namespace
