// Tests for the treatment Executive (detection -> treatment dispatch) and
// the generated Autoconf-style configuration header.
#include <gtest/gtest.h>

#include "core/executive.hpp"
#include "hw/machine.hpp"
#include "mem/selector.hpp"

namespace {

using namespace aft::core;

Provenance prov() {
  return Provenance{.origin = "test", .rationale = "test",
                    .stated_at = BindingTime::kDesign};
}

struct Fixture {
  AssumptionRegistry registry;
  Context ctx;
  Executive executive{registry};

  Fixture() {
    registry.emplace<std::int64_t>("hw.a", "a is 1", Subject::kHardware, prov(),
                                   std::int64_t{1}, "a");
    registry.emplace<std::int64_t>("hw.b", "b is 1", Subject::kHardware, prov(),
                                   std::int64_t{1}, "b");
    registry.emplace<std::int64_t>("env.c", "c is 1",
                                   Subject::kPhysicalEnvironment, prov(),
                                   std::int64_t{1}, "c");
    ctx.set("a", std::int64_t{1});
    ctx.set("b", std::int64_t{1});
    ctx.set("c", std::int64_t{1});
  }
};

TEST(ExecutiveTest, NoClashesNothingDispatched) {
  Fixture f;
  f.registry.verify_all(f.ctx);
  EXPECT_EQ(f.executive.treated(), 0u);
  EXPECT_EQ(f.executive.untreated(), 0u);
}

TEST(ExecutiveTest, DispatchPrecedenceIdOverSubjectOverDefault) {
  Fixture f;
  std::vector<std::string> calls;
  f.executive.on_clash_of("hw.a", [&](const Clash&, const Diagnosis&) {
    calls.push_back("id:hw.a");
  });
  f.executive.on_subject(Subject::kHardware, [&](const Clash& c, const Diagnosis&) {
    calls.push_back("subject:" + c.assumption_id);
  });
  f.executive.set_default([&](const Clash& c, const Diagnosis&) {
    calls.push_back("default:" + c.assumption_id);
  });

  f.ctx.set("a", std::int64_t{9});  // hw.a -> by-id
  f.ctx.set("b", std::int64_t{9});  // hw.b -> by-subject
  f.ctx.set("c", std::int64_t{9});  // env.c -> default
  f.registry.verify_all(f.ctx);

  EXPECT_EQ(calls, (std::vector<std::string>{"id:hw.a", "subject:hw.b",
                                             "default:env.c"}));
  EXPECT_EQ(f.executive.treated(), 3u);
  EXPECT_EQ(f.executive.untreated(), 0u);
  ASSERT_EQ(f.executive.log().size(), 3u);
  EXPECT_EQ(f.executive.log()[0].second, Executive::Tier::kById);
  EXPECT_EQ(f.executive.log()[1].second, Executive::Tier::kBySubject);
  EXPECT_EQ(f.executive.log()[2].second, Executive::Tier::kDefault);
}

TEST(ExecutiveTest, UntreatedClashesAreKeptAndCounted) {
  Fixture f;
  f.executive.on_clash_of("hw.a", [](const Clash&, const Diagnosis&) {});
  f.ctx.set("a", std::int64_t{9});
  f.ctx.set("c", std::int64_t{9});  // nothing registered for this one
  f.registry.verify_all(f.ctx);
  EXPECT_EQ(f.executive.treated(), 1u);
  EXPECT_EQ(f.executive.untreated(), 1u);
  ASSERT_EQ(f.executive.untreated_clashes().size(), 1u);
  EXPECT_EQ(f.executive.untreated_clashes()[0].assumption_id, "env.c");
}

TEST(ExecutiveTest, TreatmentCanActuallyTreat) {
  // The canonical loop: the treatment re-binds the hypothesis so the next
  // verification passes — detection, treatment, recovery.
  Fixture f;
  auto* assumption =
      dynamic_cast<Assumption<std::int64_t>*>(f.registry.find("hw.a"));
  ASSERT_NE(assumption, nullptr);
  f.executive.on_clash_of("hw.a", [&](const Clash& clash, const Diagnosis&) {
    assumption->rebind(std::stoll(clash.observed));
  });
  f.ctx.set("a", std::int64_t{42});
  EXPECT_EQ(f.registry.verify_all(f.ctx).size(), 1u);  // clash -> treated
  EXPECT_TRUE(f.registry.verify_all(f.ctx).empty());   // now it holds
  EXPECT_EQ(assumption->assumed(), 42);
}

TEST(ExecutiveTest, TierNames) {
  EXPECT_STREQ(Executive::to_string(Executive::Tier::kById), "by-id");
  EXPECT_STREQ(Executive::to_string(Executive::Tier::kNone), "UNTREATED");
}

// --- generate_config_header -------------------------------------------------------

TEST(ConfigHeaderTest, RefusedDeploymentThrows) {
  aft::mem::SelectionReport refused;
  EXPECT_THROW((void)aft::mem::generate_config_header(refused),
               std::invalid_argument);
}

TEST(ConfigHeaderTest, HeaderCarriesDecisionAndAuditTrail) {
  aft::hw::Machine obc = aft::hw::machines::satellite_obc(64);
  aft::mem::MethodSelector selector;
  const auto report = selector.analyze(obc);
  const std::string header = aft::mem::generate_config_header(report);
  EXPECT_NE(header.find("#pragma once"), std::string::npos);
  EXPECT_NE(header.find("#define AFT_MEMORY_BEHAVIOUR \"f3\""), std::string::npos);
  EXPECT_NE(header.find("#define AFT_MEMORY_METHOD \"M3-sel-mirror\""),
            std::string::npos);
  EXPECT_NE(header.find("#define AFT_MEMORY_METHOD_M3_SEL_MIRROR 1"),
            std::string::npos);
  // The audit trail rides along as comments.
  EXPECT_NE(header.find("// "), std::string::npos);
  EXPECT_NE(header.find("lot:"), std::string::npos);
}

}  // namespace
