// Cross-cutting property tests: invariants that must hold over every
// memory access method, randomized topologies, voting algebra, the
// dual-threshold filter, and the series logger.
#include <gtest/gtest.h>

#include <memory>

#include "arch/dag.hpp"
#include "detect/dual_threshold.hpp"
#include "hw/memory_chip.hpp"
#include "mem/method_ecc.hpp"
#include "mem/method_mirror.hpp"
#include "mem/method_raw.hpp"
#include "mem/method_remap.hpp"
#include "mem/method_tmr.hpp"
#include "util/rng.hpp"
#include "util/series.hpp"
#include "vote/dtof.hpp"
#include "vote/voter.hpp"

namespace {

// --- Invariants over every access method ---------------------------------------

struct MethodRig {
  aft::hw::MemoryChip c0{128}, c1{128}, c2{128};
  std::unique_ptr<aft::mem::IMemoryAccessMethod> method;

  explicit MethodRig(int which) {
    using namespace aft::mem;
    switch (which) {
      case 0: method = std::make_unique<RawAccess>(c0); break;
      case 1: method = std::make_unique<EccScrubAccess>(c0); break;
      case 2: method = std::make_unique<EccRemapAccess>(c0); break;
      case 3: method = std::make_unique<SelMirrorAccess>(c0, c1); break;
      default: method = std::make_unique<TmrEccAccess>(c0, c1, c2); break;
    }
  }
};

class AllMethodsTest : public ::testing::TestWithParam<int> {};

TEST_P(AllMethodsTest, FaultFreeRoundTripIsExact) {
  MethodRig rig(GetParam());
  aft::util::Xoshiro256 rng(static_cast<std::uint64_t>(GetParam()));
  const std::size_t n = rig.method->capacity_words();
  std::vector<std::uint64_t> expected(n);
  for (std::size_t w = 0; w < n; ++w) {
    expected[w] = rng.next();
    ASSERT_TRUE(rig.method->write(w, expected[w]));
  }
  rig.method->scrub_step();  // maintenance must not disturb clean data
  for (std::size_t w = 0; w < n; ++w) {
    const auto r = rig.method->read(w);
    ASSERT_EQ(r.status, aft::mem::ReadStatus::kOk);
    ASSERT_EQ(r.value, expected[w]);
  }
  EXPECT_EQ(rig.method->stats().data_losses, 0u);
}

TEST_P(AllMethodsTest, OverwriteTakesEffect) {
  MethodRig rig(GetParam());
  rig.method->write(5, 111);
  rig.method->write(5, 222);
  EXPECT_EQ(rig.method->read(5).value, 222u);
}

TEST_P(AllMethodsTest, CapacityIsHonest) {
  MethodRig rig(GetParam());
  const std::size_t n = rig.method->capacity_words();
  EXPECT_GT(n, 0u);
  EXPECT_LE(n, 128u);
  // M0/M1 address-check at the device; M2..M4 at the method: either way the
  // first out-of-capacity address must not be silently accepted as valid.
  if (GetParam() >= 2) {
    EXPECT_THROW((void)rig.method->read(n), std::out_of_range);
  }
}

TEST_P(AllMethodsTest, ToleranceClaimsAreMonotoneInCost) {
  // Any method claiming to tolerate f also tolerates everything f covers.
  MethodRig rig(GetParam());
  using aft::mem::FailureSemantics;
  const FailureSemantics all[] = {
      FailureSemantics::kF0Stable, FailureSemantics::kF1TransientCmos,
      FailureSemantics::kF2StuckAtCmos, FailureSemantics::kF3SdramSel,
      FailureSemantics::kF4SdramSelSeu};
  for (const auto stronger : all) {
    if (!rig.method->tolerates(stronger)) continue;
    for (const auto weaker : all) {
      if (aft::mem::covers(stronger, weaker)) {
        EXPECT_TRUE(rig.method->tolerates(weaker))
            << rig.method->name() << " claims " << to_string(stronger)
            << " but not the weaker " << to_string(weaker);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(M0toM4, AllMethodsTest, ::testing::Range(0, 5),
                         [](const ::testing::TestParamInfo<int>& param_info) {
                           return "M" + std::to_string(param_info.param);
                         });

// --- Randomized DAG topological-order property -----------------------------------

TEST(DagPropertyTest, RandomDagsTopoOrderRespectsEveryEdge) {
  aft::util::Xoshiro256 rng(2024);
  for (int trial = 0; trial < 50; ++trial) {
    const std::size_t n = 2 + rng.uniform_int(0, 10);
    aft::arch::DagSnapshot snapshot;
    snapshot.name = "random";
    for (std::size_t i = 0; i < n; ++i) {
      snapshot.nodes.push_back("n" + std::to_string(i));
    }
    // Edges only i -> j with i < j: guaranteed acyclic.
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = i + 1; j < n; ++j) {
        if (rng.bernoulli(0.3)) {
          snapshot.edges.emplace_back(snapshot.nodes[i], snapshot.nodes[j]);
        }
      }
    }
    aft::arch::ReflectiveDag dag;
    dag.inject(snapshot);
    const auto order = dag.topological_order();
    ASSERT_EQ(order.size(), n);
    auto position = [&](const std::string& id) {
      return std::find(order.begin(), order.end(), id) - order.begin();
    };
    for (const auto& [from, to] : snapshot.edges) {
      ASSERT_LT(position(from), position(to))
          << "edge " << from << "->" << to << " violated in trial " << trial;
    }
  }
}

// --- Voting algebra properties -------------------------------------------------------

TEST(VotePropertyTest, MajorityImpliesStrictCount) {
  aft::util::Xoshiro256 rng(99);
  for (int trial = 0; trial < 500; ++trial) {
    std::vector<aft::vote::Ballot> ballots;
    const std::size_t n = 1 + rng.uniform_int(0, 12);
    for (std::size_t i = 0; i < n; ++i) {
      ballots.push_back(static_cast<aft::vote::Ballot>(rng.uniform_int(0, 3)));
    }
    const auto outcome = aft::vote::majority_vote(ballots);
    // Validity: the winner is one of the ballots; agreement counts are
    // consistent; majority iff strict.
    ASSERT_EQ(outcome.agreeing + outcome.dissent, n);
    if (outcome.has_majority) {
      ASSERT_GT(outcome.agreeing * 2, n);
      ASSERT_NE(std::find(ballots.begin(), ballots.end(), outcome.winner),
                ballots.end());
    } else {
      ASSERT_LE(outcome.agreeing * 2, n);
    }
    // dtof consistency.
    const auto d = aft::vote::dtof_of_outcome(outcome);
    ASSERT_GE(d, 0);
    ASSERT_LE(d, aft::vote::dtof_max(n));
  }
}

TEST(VotePropertyTest, DtofIsMonotoneInDissent) {
  for (std::size_t n = 1; n <= 31; n += 2) {
    for (std::size_t m = 1; m <= n; ++m) {
      ASSERT_LE(aft::vote::dtof(n, m), aft::vote::dtof(n, m - 1));
    }
  }
}

// --- DualThresholdAlphaCount -----------------------------------------------------------

TEST(DualThresholdTest, ParamValidation) {
  using D = aft::detect::DualThresholdAlphaCount;
  EXPECT_THROW(D(D::Params{.decay = 1.0, .high = 3, .low = 1}), std::invalid_argument);
  EXPECT_THROW(D(D::Params{.decay = 0.5, .high = 1, .low = 1}), std::invalid_argument);
  EXPECT_THROW(D(D::Params{.decay = 0.5, .high = 1, .low = -0.1}),
               std::invalid_argument);
}

TEST(DualThresholdTest, SuspendAndReintegrate) {
  aft::detect::DualThresholdAlphaCount d(
      aft::detect::DualThresholdAlphaCount::Params{.decay = 0.5, .high = 3, .low = 0.5});
  for (int i = 0; i < 4; ++i) d.record(true);  // score 4 > 3
  EXPECT_TRUE(d.suspended());
  EXPECT_EQ(d.suspensions(), 1u);
  // Healthy streak decays 4 -> 2 -> 1 -> 0.5 -> 0.25 < 0.5: reintegrated.
  int healthy_rounds = 0;
  while (d.suspended() && healthy_rounds < 100) {
    d.record(false);
    ++healthy_rounds;
  }
  EXPECT_FALSE(d.suspended());
  EXPECT_EQ(healthy_rounds, 4);
  EXPECT_EQ(d.reintegrations(), 1u);
}

TEST(DualThresholdTest, HysteresisPreventsFlapping) {
  // A unit oscillating right at the single threshold would flap; with
  // hysteresis its state changes at most twice over the oscillation.
  aft::detect::DualThresholdAlphaCount d(
      aft::detect::DualThresholdAlphaCount::Params{.decay = 0.7, .high = 3, .low = 0.3});
  for (int i = 0; i < 5; ++i) d.record(true);
  ASSERT_TRUE(d.suspended());
  std::uint64_t transitions = d.suspensions() + d.reintegrations();
  // Alternate error/ok: score hovers between ~2.6 and ~3.6 — inside the
  // hysteresis band once suspended, so no state change occurs.
  for (int i = 0; i < 100; ++i) d.record(i % 2 == 0);
  EXPECT_EQ(d.suspensions() + d.reintegrations(), transitions);
  EXPECT_TRUE(d.suspended());
}

TEST(DualThresholdTest, IntermittentUnitIsSuspendedDuringBurstsOnly) {
  aft::detect::DualThresholdAlphaCount d(
      aft::detect::DualThresholdAlphaCount::Params{.decay = 0.5, .high = 3, .low = 0.2});
  int suspended_rounds = 0;
  for (int cycle = 0; cycle < 5; ++cycle) {
    for (int i = 0; i < 10; ++i) d.record(true);    // burst
    for (int i = 0; i < 50; ++i) {
      d.record(false);
      if (d.suspended()) ++suspended_rounds;
    }
  }
  EXPECT_EQ(d.suspensions(), 5u);
  EXPECT_EQ(d.reintegrations(), 5u);
  EXPECT_LT(suspended_rounds, 5 * 50);  // it spends the calm stretches in service
}

// --- SeriesLogger ---------------------------------------------------------------------

TEST(SeriesLoggerTest, Validation) {
  EXPECT_THROW(aft::util::SeriesLogger({}), std::invalid_argument);
  aft::util::SeriesLogger log({"t", "x"});
  EXPECT_THROW(log.append({1.0}), std::invalid_argument);
  EXPECT_THROW((void)log.row(0), std::out_of_range);
  EXPECT_THROW((void)log.column("nope"), std::invalid_argument);
}

TEST(SeriesLoggerTest, CsvShape) {
  aft::util::SeriesLogger log({"t", "replicas", "dtof"});
  log.append({0, 3, 2});
  log.append({1, 5, 3});
  const std::string csv = log.render_csv();
  EXPECT_EQ(csv, "t,replicas,dtof\n0,3,2\n1,5,3\n");
  EXPECT_EQ(log.column("replicas"), (std::vector<double>{3, 5}));
  EXPECT_EQ(log.rows(), 2u);
}

}  // namespace
