// Tests for the deterministic parallel campaign runner: result ordering,
// bit-identical output for every thread count, AFT_THREADS resolution, and
// exception propagation.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <numeric>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "obs/obs.hpp"
#include "sim/simulator.hpp"
#include "util/campaign.hpp"
#include "util/rng.hpp"

namespace {

using aft::util::campaign_threads;
using aft::util::parallel_for_index;
using aft::util::run_campaigns;

/// RAII guard restoring AFT_THREADS after a test mutates it.
class ThreadsEnvGuard {
 public:
  ThreadsEnvGuard() {
    if (const char* v = std::getenv("AFT_THREADS")) saved_ = v;
  }
  ~ThreadsEnvGuard() {
    if (saved_.empty()) {
      ::unsetenv("AFT_THREADS");
    } else {
      ::setenv("AFT_THREADS", saved_.c_str(), 1);
    }
  }

 private:
  std::string saved_;
};

TEST(CampaignTest, EveryIndexRunsExactlyOnce) {
  std::vector<std::atomic<int>> hits(257);
  parallel_for_index(hits.size(), 4, [&](std::size_t i) { ++hits[i]; });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(CampaignTest, ResultsArriveInJobOrder) {
  const auto out =
      run_campaigns(100, [](std::size_t i) { return i * i; }, 4);
  ASSERT_EQ(out.size(), 100u);
  for (std::size_t i = 0; i < out.size(); ++i) EXPECT_EQ(out[i], i * i);
}

TEST(CampaignTest, BitIdenticalForEveryThreadCount) {
  // Each job runs its own seeded RNG stream — the campaign shape every
  // ablation bench uses.  The merged results must not depend on the pool
  // size or on scheduling.
  const auto job = [](std::size_t i) {
    aft::util::Xoshiro256 rng(1000 + i);
    std::uint64_t acc = 0;
    for (int k = 0; k < 5000; ++k) acc ^= rng.next();
    return acc;
  };
  const auto serial = run_campaigns(23, job, 1);
  for (const unsigned threads : {2u, 4u, 8u}) {
    EXPECT_EQ(run_campaigns(23, job, threads), serial) << threads << " threads";
  }
}

TEST(CampaignTest, EachWorkerOwnsItsOwnSimulator) {
  const auto job = [](std::size_t i) {
    aft::sim::Simulator sim;
    std::uint64_t fired = 0;
    for (aft::sim::SimTime t = 1; t <= 50; ++t) {
      sim.schedule_at(t * (i + 1), [&fired] { ++fired; });
    }
    sim.run_until(40 * (i + 1));
    return fired;
  };
  const auto serial = run_campaigns(12, job, 1);
  EXPECT_EQ(run_campaigns(12, job, 4), serial);
  for (std::size_t i = 0; i < serial.size(); ++i) EXPECT_EQ(serial[i], 40u);
}

TEST(CampaignTest, ZeroJobsIsANoOp) {
  bool called = false;
  parallel_for_index(0, 4, [&](std::size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(CampaignTest, ExceptionPropagatesToCaller) {
  EXPECT_THROW(
      parallel_for_index(64, 4,
                         [](std::size_t i) {
                           if (i == 37) throw std::runtime_error("boom");
                         }),
      std::runtime_error);
}

// Campaign observability capture needs the thread-local install path,
// which -DAFT_OBS=OFF compiles out.
#if !defined(AFT_OBS_DISABLED)

/// One deterministic fake campaign job: emits a couple of trace events and
/// metrics derived from the job index alone.
void obs_job(std::size_t i) {
  aft::obs::TraceSink* sink = aft::obs::trace();
  ASSERT_NE(sink, nullptr);  // capture must install a per-job sink
  sink->set_time(i * 10);
  sink->emit("job", "work", {{"i", i}});
  sink->set_time(i * 10 + 5);
  sink->emit("job", "done", {{"result", i * i}});
  aft::obs::metrics()->add("jobs.completed", 1);
  aft::obs::metrics()->observe("jobs.result", static_cast<double>(i * i));
  aft::obs::metrics()->set_gauge("jobs.last_index", static_cast<double>(i));
}

/// Runs the 16-job fake campaign on `threads` workers and returns the
/// serialized (trace, metrics) pair.
std::pair<std::string, std::string> run_obs_campaign(unsigned threads) {
  aft::obs::TraceSink sink;
  aft::obs::MetricsRegistry registry;
  const aft::obs::ScopedObs scope(&sink, &registry);
  parallel_for_index(16, threads, obs_job);
  return {sink.jsonl(), registry.json()};
}

TEST(CampaignTest, TraceAndMetricsBitIdenticalAcrossThreadCounts) {
  // The acceptance property of the obs layer: per-job sinks merged in
  // job-index order make the serialized trace and metrics byte-identical
  // whether the campaign ran on 1, 3, or 8 workers.
  const auto serial = run_obs_campaign(1);
  EXPECT_FALSE(serial.first.empty());
  for (const unsigned threads : {2u, 3u, 8u}) {
    const auto parallel = run_obs_campaign(threads);
    EXPECT_EQ(parallel.first, serial.first) << "threads=" << threads;
    EXPECT_EQ(parallel.second, serial.second) << "threads=" << threads;
  }
  // Sanity on the merged content: every job contributed.
  EXPECT_NE(serial.second.find(R"("jobs.completed":16)"), std::string::npos);
  // Gauge merge is last-writer in job order: job 15.
  EXPECT_NE(serial.second.find(R"("jobs.last_index":15)"), std::string::npos);
}

/// Campaign job that exercises the PR-8 surfaces: per-job timeline
/// registration, clock-driven windowing, and histogram-backed stats —
/// everything the "quantiles" and "timelines" JSON sections export.
void timeline_job(std::size_t i) {
  aft::obs::MetricsRegistry* reg = aft::obs::metrics();
  ASSERT_NE(reg, nullptr);
  reg->timeline("job.latency", /*window_ticks=*/50);
  reg->timeline_counter("job.calls", /*window_ticks=*/50);
  reg->timeline_gauge("job.level", /*window_ticks=*/50);
  for (std::uint64_t t = 0; t < 200; t += 7) {
    reg->set_time(t);
    reg->observe("job.latency", static_cast<double>(1 + (t * (i + 3)) % 400));
    reg->add("job.calls");
    reg->set_gauge("job.level", static_cast<double>((t + i) % 9));
  }
}

std::string run_timeline_campaign(unsigned threads) {
  aft::obs::TraceSink sink;
  aft::obs::MetricsRegistry registry;
  const aft::obs::ScopedObs scope(&sink, &registry);
  parallel_for_index(16, threads, timeline_job);
  return registry.json();
}

TEST(CampaignTest, TimelineAndQuantileJsonBitIdenticalAcrossThreadCounts) {
  // PR-8 acceptance: the quantile and windowed-timeline exports rest on
  // integer bucket counts with associative merges, so the full metrics
  // JSON — timelines included — is byte-identical for any AFT_THREADS.
  const std::string serial = run_timeline_campaign(1);
  EXPECT_NE(serial.find(R"("quantiles":{"job.latency":{"count":)"),
            std::string::npos);
  EXPECT_NE(serial.find(R"("timelines":{)"), std::string::npos);
  EXPECT_NE(serial.find(R"("job.calls":{"kind":"counter","window":50)"),
            std::string::npos);
  EXPECT_NE(serial.find(R"("job.latency":{"kind":"stat","window":50)"),
            std::string::npos);
  for (const unsigned threads : {2u, 3u, 8u}) {
    EXPECT_EQ(run_timeline_campaign(threads), serial) << "threads=" << threads;
  }
}

TEST(CampaignTest, WorkersDoNotTouchTheCallersSink) {
  aft::obs::TraceSink sink;
  aft::obs::MetricsRegistry registry;
  const aft::obs::ScopedObs scope(&sink, &registry);
  parallel_for_index(8, 4, [&sink](std::size_t) {
    // Each job sees its own fresh sink, never the caller's.
    EXPECT_NE(aft::obs::trace(), &sink);
    EXPECT_EQ(aft::obs::trace()->size(), 1u);  // the campaign/job marker
  });
  // 8 jobs x (1 marker + 0 events) merged in.
  EXPECT_EQ(sink.size(), 8u);
}

TEST(CampaignTest, ObsCaptureWritesPartialTraceOnError) {
  aft::obs::TraceSink sink;
  aft::obs::MetricsRegistry registry;
  const aft::obs::ScopedObs scope(&sink, &registry);
  EXPECT_THROW(parallel_for_index(4, 1,
                                  [](std::size_t i) {
                                    aft::obs::metrics()->add("ran", 1);
                                    if (i == 2) throw std::runtime_error("x");
                                  }),
               std::runtime_error);
  // Jobs 0..2 ran (job 2 up to its throw); their metrics were still merged.
  EXPECT_EQ(registry.counter("ran"), 3u);
}

#endif  // !AFT_OBS_DISABLED

TEST(CampaignTest, ThreadCountRespectsEnvVar) {
  const ThreadsEnvGuard guard;
  ::setenv("AFT_THREADS", "3", 1);
  EXPECT_EQ(campaign_threads(), 3u);
  ::setenv("AFT_THREADS", "1", 1);
  EXPECT_EQ(campaign_threads(), 1u);
  // Malformed / non-positive values fall back to the hardware default.
  ::setenv("AFT_THREADS", "0", 1);
  EXPECT_GE(campaign_threads(), 1u);
  ::setenv("AFT_THREADS", "banana", 1);
  EXPECT_GE(campaign_threads(), 1u);
  ::unsetenv("AFT_THREADS");
  EXPECT_GE(campaign_threads(), 1u);
}

TEST(CampaignTest, MalformedThreadCountIsNotTruncatedToItsPrefix) {
  // Regression: atoi-style parsing accepted "3garbage" as 3, silently
  // running campaigns on the wrong pool size.  The strict parse must reject
  // any trailing junk and fall back to the hardware default.  Two different
  // numeric prefixes prove the point on any machine: the hardware default
  // cannot equal both 3 and 5.
  const ThreadsEnvGuard guard;
  ::setenv("AFT_THREADS", "3garbage", 1);
  const unsigned first = campaign_threads();
  ::setenv("AFT_THREADS", "5garbage", 1);
  const unsigned second = campaign_threads();
  EXPECT_EQ(first, second);
  EXPECT_GE(first, 1u);
  // Other malformed shapes take the same fallback.
  ::setenv("AFT_THREADS", "", 1);
  EXPECT_EQ(campaign_threads(), first);
  ::setenv("AFT_THREADS", " 4 ", 1);
  EXPECT_EQ(campaign_threads(), first);
  ::setenv("AFT_THREADS", "0x8", 1);
  EXPECT_EQ(campaign_threads(), first);
  ::setenv("AFT_THREADS", "99999999999999999999", 1);  // out of range
  EXPECT_EQ(campaign_threads(), first);
  // A well-formed value still wins.
  ::setenv("AFT_THREADS", "4", 1);
  EXPECT_EQ(campaign_threads(), 4u);
}

}  // namespace
