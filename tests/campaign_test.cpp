// Tests for the deterministic parallel campaign runner: result ordering,
// bit-identical output for every thread count, AFT_THREADS resolution, and
// exception propagation.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "sim/simulator.hpp"
#include "util/campaign.hpp"
#include "util/rng.hpp"

namespace {

using aft::util::campaign_threads;
using aft::util::parallel_for_index;
using aft::util::run_campaigns;

/// RAII guard restoring AFT_THREADS after a test mutates it.
class ThreadsEnvGuard {
 public:
  ThreadsEnvGuard() {
    if (const char* v = std::getenv("AFT_THREADS")) saved_ = v;
  }
  ~ThreadsEnvGuard() {
    if (saved_.empty()) {
      ::unsetenv("AFT_THREADS");
    } else {
      ::setenv("AFT_THREADS", saved_.c_str(), 1);
    }
  }

 private:
  std::string saved_;
};

TEST(CampaignTest, EveryIndexRunsExactlyOnce) {
  std::vector<std::atomic<int>> hits(257);
  parallel_for_index(hits.size(), 4, [&](std::size_t i) { ++hits[i]; });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(CampaignTest, ResultsArriveInJobOrder) {
  const auto out =
      run_campaigns(100, [](std::size_t i) { return i * i; }, 4);
  ASSERT_EQ(out.size(), 100u);
  for (std::size_t i = 0; i < out.size(); ++i) EXPECT_EQ(out[i], i * i);
}

TEST(CampaignTest, BitIdenticalForEveryThreadCount) {
  // Each job runs its own seeded RNG stream — the campaign shape every
  // ablation bench uses.  The merged results must not depend on the pool
  // size or on scheduling.
  const auto job = [](std::size_t i) {
    aft::util::Xoshiro256 rng(1000 + i);
    std::uint64_t acc = 0;
    for (int k = 0; k < 5000; ++k) acc ^= rng.next();
    return acc;
  };
  const auto serial = run_campaigns(23, job, 1);
  for (const unsigned threads : {2u, 4u, 8u}) {
    EXPECT_EQ(run_campaigns(23, job, threads), serial) << threads << " threads";
  }
}

TEST(CampaignTest, EachWorkerOwnsItsOwnSimulator) {
  const auto job = [](std::size_t i) {
    aft::sim::Simulator sim;
    std::uint64_t fired = 0;
    for (aft::sim::SimTime t = 1; t <= 50; ++t) {
      sim.schedule_at(t * (i + 1), [&fired] { ++fired; });
    }
    sim.run_until(40 * (i + 1));
    return fired;
  };
  const auto serial = run_campaigns(12, job, 1);
  EXPECT_EQ(run_campaigns(12, job, 4), serial);
  for (std::size_t i = 0; i < serial.size(); ++i) EXPECT_EQ(serial[i], 40u);
}

TEST(CampaignTest, ZeroJobsIsANoOp) {
  bool called = false;
  parallel_for_index(0, 4, [&](std::size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(CampaignTest, ExceptionPropagatesToCaller) {
  EXPECT_THROW(
      parallel_for_index(64, 4,
                         [](std::size_t i) {
                           if (i == 37) throw std::runtime_error("boom");
                         }),
      std::runtime_error);
}

TEST(CampaignTest, ThreadCountRespectsEnvVar) {
  const ThreadsEnvGuard guard;
  ::setenv("AFT_THREADS", "3", 1);
  EXPECT_EQ(campaign_threads(), 3u);
  ::setenv("AFT_THREADS", "1", 1);
  EXPECT_EQ(campaign_threads(), 1u);
  // Malformed / non-positive values fall back to the hardware default.
  ::setenv("AFT_THREADS", "0", 1);
  EXPECT_GE(campaign_threads(), 1u);
  ::setenv("AFT_THREADS", "banana", 1);
  EXPECT_GE(campaign_threads(), 1u);
  ::unsetenv("AFT_THREADS");
  EXPECT_GE(campaign_threads(), 1u);
}

}  // namespace
