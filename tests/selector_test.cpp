// Tests for the Sect. 3.1 pipeline: failure-semantics algebra, knowledge
// base resolution order, and the Autoconf-like method selector.
#include <gtest/gtest.h>

#include "hw/machine.hpp"
#include "mem/failure_semantics.hpp"
#include "mem/knowledge_base.hpp"
#include "mem/selector.hpp"

namespace {

using namespace aft::mem;
using aft::hw::Machine;
using aft::hw::MemoryTechnology;
using aft::hw::SpdRecord;

// --- FailureSemantics ---------------------------------------------------------

TEST(FailureSemanticsTest, ModesDecomposition) {
  EXPECT_FALSE(modes_of(FailureSemantics::kF0Stable).transient);
  EXPECT_TRUE(modes_of(FailureSemantics::kF1TransientCmos).transient);
  EXPECT_TRUE(modes_of(FailureSemantics::kF2StuckAtCmos).stuck_at);
  EXPECT_TRUE(modes_of(FailureSemantics::kF3SdramSel).sel);
  EXPECT_FALSE(modes_of(FailureSemantics::kF3SdramSel).heavy_seu);
  EXPECT_TRUE(modes_of(FailureSemantics::kF4SdramSelSeu).heavy_seu);
}

TEST(FailureSemanticsTest, CoversIsPartialOrder) {
  using F = FailureSemantics;
  // Reflexive.
  for (auto f : {F::kF0Stable, F::kF1TransientCmos, F::kF2StuckAtCmos,
                 F::kF3SdramSel, F::kF4SdramSelSeu}) {
    EXPECT_TRUE(covers(f, f));
  }
  // f1 covers f0; f2 covers f1; f4 covers f3; f4 covers f1.
  EXPECT_TRUE(covers(F::kF1TransientCmos, F::kF0Stable));
  EXPECT_TRUE(covers(F::kF2StuckAtCmos, F::kF1TransientCmos));
  EXPECT_TRUE(covers(F::kF4SdramSelSeu, F::kF3SdramSel));
  EXPECT_TRUE(covers(F::kF4SdramSelSeu, F::kF1TransientCmos));
  // f2 and f3 are incomparable.
  EXPECT_FALSE(covers(F::kF2StuckAtCmos, F::kF3SdramSel));
  EXPECT_FALSE(covers(F::kF3SdramSel, F::kF2StuckAtCmos));
  // Nothing but itself covers f4's heavy_seu.
  EXPECT_FALSE(covers(F::kF3SdramSel, F::kF4SdramSelSeu));
}

TEST(FailureSemanticsTest, StatementsMatchThePaper) {
  EXPECT_EQ(statement(FailureSemantics::kF0Stable),
            "Memory is stable and unaffected by failures");
  EXPECT_NE(statement(FailureSemantics::kF4SdramSelSeu).find("SEL and SEU"),
            std::string::npos);
  EXPECT_EQ(to_string(FailureSemantics::kF2StuckAtCmos), "f2");
}

TEST(LabelOfTest, CanonicalAndCompositeLabels) {
  EXPECT_EQ(label_of(modes_of(FailureSemantics::kF0Stable)), "f0");
  EXPECT_EQ(label_of(modes_of(FailureSemantics::kF3SdramSel)), "f3");
  FaultModes combo{.transient = true, .stuck_at = true, .sel = true};
  EXPECT_EQ(label_of(combo), "f2+f3");
}

// --- KnowledgeBase --------------------------------------------------------------

TEST(KnowledgeBaseTest, ResolutionOrderLotThenModelThenTechnology) {
  KnowledgeBase kb;
  kb.set_technology_default(MemoryTechnology::kSdram,
                            KnownBehavior{FailureSemantics::kF4SdramSelSeu, {}, {}});
  kb.add_model_entry("V", "M",
                     KnownBehavior{FailureSemantics::kF3SdramSel, {}, {}});
  kb.add_lot_entry("V", "M", "L1",
                   KnownBehavior{FailureSemantics::kF1TransientCmos, {}, {}});

  SpdRecord spd{.vendor = "V", .model = "M", .serial = "", .lot = "L1",
                .size_mib = 0, .width_bits = 64, .clock_mhz = 0,
                .technology = MemoryTechnology::kSdram, .slot = ""};
  EXPECT_EQ(kb.lookup(spd)->semantics, FailureSemantics::kF1TransientCmos);

  spd.lot = "L2";  // unknown lot -> model entry
  EXPECT_EQ(kb.lookup(spd)->semantics, FailureSemantics::kF3SdramSel);

  spd.model = "OTHER";  // unknown model -> technology default
  EXPECT_EQ(kb.lookup(spd)->semantics, FailureSemantics::kF4SdramSelSeu);
}

TEST(KnowledgeBaseTest, UnknownEverythingIsNullopt) {
  KnowledgeBase kb;
  SpdRecord spd{.vendor = "X", .model = "Y", .serial = "", .lot = "",
                .size_mib = 0, .width_bits = 64, .clock_mhz = 0,
                .technology = MemoryTechnology::kCmosSram, .slot = ""};
  EXPECT_FALSE(kb.lookup(spd).has_value());
}

TEST(KnowledgeBaseTest, ProvenanceIsRecorded) {
  KnowledgeBase kb = KnowledgeBase::with_defaults();
  SpdRecord spd{.vendor = "RADPART", .model = "SDR-100-256M", .serial = "",
                .lot = "L2008-03", .size_mib = 0, .width_bits = 64,
                .clock_mhz = 0, .technology = MemoryTechnology::kSdram,
                .slot = ""};
  const auto hit = kb.lookup(spd);
  ASSERT_TRUE(hit.has_value());
  EXPECT_NE(hit->source.find("lot:"), std::string::npos);
  EXPECT_EQ(hit->semantics, FailureSemantics::kF3SdramSel);
}

TEST(KnowledgeBaseTest, DefaultsCoverAllTechnologies) {
  KnowledgeBase kb = KnowledgeBase::with_defaults();
  for (auto tech : {MemoryTechnology::kCmosSram, MemoryTechnology::kSdram,
                    MemoryTechnology::kDdrSdram}) {
    SpdRecord spd{.vendor = "?", .model = "?", .serial = "", .lot = "",
                  .size_mib = 0, .width_bits = 64, .clock_mhz = 0,
                  .technology = tech, .slot = ""};
    EXPECT_TRUE(kb.lookup(spd).has_value());
  }
}

// --- MethodSelector ----------------------------------------------------------------

TEST(SelectorTest, LaptopGetsCheapEcc) {
  // Fig. 2 laptop: DDR, f1 world -> M1 is the cheapest adequate method.
  Machine laptop = aft::hw::machines::laptop(64);
  MethodSelector selector;
  const SelectionReport report = selector.analyze(laptop);
  EXPECT_EQ(report.required_label, "f1");
  ASSERT_TRUE(report.selected());
  EXPECT_EQ(report.chosen, "M1-ecc-scrub");
  // M0 was filtered as inadequate even though it is cheaper.
  for (const auto& name : report.adequate) EXPECT_NE(name, "M0-raw");
}

TEST(SelectorTest, SatelliteLotKnowledgeSelectsMirrorNotTmr) {
  // The OBC's SDRAM lot is known f3 (SEL, tolerable SEU): M3 suffices and
  // is cheaper than M4.  Without lot knowledge f4 would force M4.
  Machine obc = aft::hw::machines::satellite_obc(64);
  MethodSelector selector;
  const SelectionReport report = selector.analyze(obc);
  EXPECT_EQ(report.required_label, "f3");
  ASSERT_TRUE(report.selected());
  EXPECT_EQ(report.chosen, "M3-sel-mirror");
  EXPECT_EQ(report.adequate.front(), "M3-sel-mirror");
  EXPECT_EQ(report.adequate.back(), "M4-tmr-ecc");
}

TEST(SelectorTest, UnknownLotFallsBackToWorstCaseF4) {
  Machine obc("obc-unknown-lot");
  obc.add_bank(SpdRecord{.vendor = "RADPART", .model = "SDR-100-256M",
                         .serial = "", .lot = "L2099-99",  // not in the KB
                         .size_mib = 0, .width_bits = 64, .clock_mhz = 0, .technology = MemoryTechnology::kSdram,
                         .slot = "B0"},
               64);
  obc.add_bank(SpdRecord{.vendor = "RADPART", .model = "SDR-100-256M",
                         .serial = "", .lot = "L2099-99",
                         .size_mib = 0, .width_bits = 64, .clock_mhz = 0, .technology = MemoryTechnology::kSdram,
                         .slot = "B1"},
               64);
  obc.add_bank(SpdRecord{.vendor = "RADPART", .model = "SDR-100-256M",
                         .serial = "", .lot = "L2099-99",
                         .size_mib = 0, .width_bits = 64, .clock_mhz = 0, .technology = MemoryTechnology::kSdram,
                         .slot = "B2"},
               64);
  MethodSelector selector;
  const SelectionReport report = selector.analyze(obc);
  EXPECT_EQ(report.required_label, "f4");
  ASSERT_TRUE(report.selected());
  EXPECT_EQ(report.chosen, "M4-tmr-ecc");
}

TEST(SelectorTest, InsufficientBanksRefusesDeployment) {
  // f4 platform with a single bank: M4 needs 3 devices -> nothing adequate.
  Machine tiny("tiny-sat");
  tiny.add_bank(SpdRecord{.vendor = "?", .model = "?", .serial = "", .lot = "?",
                          .size_mib = 0, .width_bits = 64, .clock_mhz = 0, .technology = MemoryTechnology::kSdram, .slot = "B0"},
                64);
  MethodSelector selector;
  const SelectionReport report = selector.analyze(tiny);
  EXPECT_FALSE(report.selected());
  EXPECT_TRUE(report.adequate.empty());
  EXPECT_THROW((void)selector.instantiate(tiny, report), std::runtime_error);
}

TEST(SelectorTest, MixedPlatformTakesModeUnion) {
  // One f2 (aging CMOS) bank + one f3 (SDRAM/SEL) bank: only M4 masks the
  // union stuck_at+sel.
  Machine mixed("frankenstein");
  mixed.add_bank(SpdRecord{.vendor = "LEGACYCM", .model = "CM-16-4M", .serial = "", .lot = "?",
                           .size_mib = 0, .width_bits = 64, .clock_mhz = 0, .technology = MemoryTechnology::kCmosSram, .slot = "B0"},
                 64);
  mixed.add_bank(SpdRecord{.vendor = "RADPART", .model = "SDR-100-256M",
                           .serial = "", .lot = "L2008-03",
                           .size_mib = 0, .width_bits = 64, .clock_mhz = 0, .technology = MemoryTechnology::kSdram, .slot = "B1"},
                 64);
  mixed.add_bank(SpdRecord{.vendor = "LEGACYCM", .model = "CM-16-4M", .serial = "", .lot = "?",
                           .size_mib = 0, .width_bits = 64, .clock_mhz = 0, .technology = MemoryTechnology::kCmosSram, .slot = "B2"},
                 64);
  MethodSelector selector;
  const SelectionReport report = selector.analyze(mixed);
  EXPECT_EQ(report.required_label, "f2+f3");
  ASSERT_TRUE(report.selected());
  EXPECT_EQ(report.chosen, "M4-tmr-ecc");
}

TEST(SelectorTest, InstantiateProducesWorkingMethod) {
  Machine laptop = aft::hw::machines::laptop(64);
  MethodSelector selector;
  const MethodSelector::Selection sel = selector.select(laptop);
  ASSERT_NE(sel.method, nullptr);
  EXPECT_EQ(sel.method->name(), "M1-ecc-scrub");
  EXPECT_TRUE(sel.method->write(0, 0xBEEF));
  EXPECT_EQ(sel.method->read(0).value, 0xBEEFu);
}

TEST(SelectorTest, ReportLogIsAnAuditTrail) {
  Machine obc = aft::hw::machines::satellite_obc(64);
  MethodSelector selector;
  const SelectionReport report = selector.analyze(obc);
  // The log must record introspection, per-bank judgment with provenance,
  // the resolved behaviour, and the selection.
  std::string joined;
  for (const auto& line : report.log) joined += line + "\n";
  EXPECT_NE(joined.find("introspecting"), std::string::npos);
  EXPECT_NE(joined.find("lot:"), std::string::npos);
  EXPECT_NE(joined.find("resolved platform behaviour f = f3"), std::string::npos);
  EXPECT_NE(joined.find("selected M3-sel-mirror"), std::string::npos);
}

TEST(SelectorTest, CostOrderingIsCheapestFirst) {
  const auto catalog = standard_catalog();
  // Cost must be strictly increasing M0 < M1 < M2 < M3 < M4.
  for (std::size_t i = 1; i < catalog.size(); ++i) {
    EXPECT_LT(catalog[i - 1].cost.total(), catalog[i].cost.total())
        << catalog[i - 1].name << " vs " << catalog[i].name;
  }
}

TEST(SelectorTest, StableMemoryPicksRawM0) {
  KnowledgeBase kb;
  kb.set_technology_default(MemoryTechnology::kCmosSram,
                            KnownBehavior{FailureSemantics::kF0Stable, {}, {}});
  Machine m("rad-hardened");
  m.add_bank(SpdRecord{.vendor = "V", .model = "M", .serial = "", .lot = "L",
                       .size_mib = 0, .width_bits = 64, .clock_mhz = 0, .technology = MemoryTechnology::kCmosSram, .slot = "B0"},
             64);
  MethodSelector selector(std::move(kb), standard_catalog());
  const SelectionReport report = selector.analyze(m);
  EXPECT_EQ(report.required_label, "f0");
  EXPECT_EQ(report.chosen, "M0-raw");  // cheapest of all, adequate for f0
}

}  // namespace
