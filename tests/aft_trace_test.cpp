// Tests for the aft_trace post-mortem tooling (tools/): the JSONL reader,
// the causal-chain / latency / diff / chrome analyses — and the end-to-end
// acceptance path: on a Fig. 6 trace, `why <raise>` must reconstruct the
// chain from the injected fault through the dissent to the switchboard
// reconfiguration.
#include <cmath>
#include <fstream>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "arch/event_bus.hpp"
#include "autonomic/experiment.hpp"
#include "net/bridge.hpp"
#include "net/endpoint.hpp"
#include "net/link.hpp"
#include "obs/obs.hpp"
#include "obs/trace.hpp"
#include "sim/simulator.hpp"
#include "trace_analysis.hpp"
#include "trace_reader.hpp"

namespace {

using aft::obs::ScopedObs;
using aft::obs::TraceSink;
using aft::tools::Trace;
using aft::tools::TraceEvent;

Trace parse(const std::string& jsonl) {
  std::istringstream in(jsonl);
  std::string error;
  const auto trace = aft::tools::parse_trace(in, error);
  EXPECT_TRUE(trace.has_value()) << error;
  return trace.value_or(Trace{});
}

TEST(TraceReaderTest, RoundTripsSinkOutput) {
  TraceSink sink;
  sink.set_time(3);
  sink.emit("mem.ecc", "corrected", {{"addr", 42u}, {"origin", "read"}});
  sink.set_cause(0);
  sink.set_time(5);
  sink.emit("detect", "latch", {{"score", 2.5}, {"s", "a\"b\\c\n\x01"}});

  const Trace trace = parse(sink.jsonl());
  ASSERT_EQ(trace.events.size(), 2u);
  const TraceEvent& e0 = trace.events[0];
  EXPECT_EQ(e0.t, 3u);
  EXPECT_EQ(e0.seq, 0u);
  EXPECT_EQ(e0.cause, -1);
  EXPECT_EQ(e0.component, "mem.ecc");
  EXPECT_EQ(e0.event, "corrected");
  ASSERT_NE(e0.field("addr"), nullptr);
  EXPECT_EQ(*e0.field("addr"), "42");
  const TraceEvent& e1 = trace.events[1];
  EXPECT_EQ(e1.cause, 0);
  ASSERT_NE(e1.field("score"), nullptr);
  EXPECT_EQ(*e1.field("score"), "2.5");
  // Escapes decode back to the original bytes.
  ASSERT_NE(e1.field("s"), nullptr);
  EXPECT_EQ(*e1.field("s"), "a\"b\\c\n\x01");
}

TEST(TraceReaderTest, ReadsTruncationFooterIntoDropped) {
  TraceSink sink(/*max_events=*/1);
  sink.emit("c", "kept");
  sink.emit("c", "dropped");
  sink.emit("c", "dropped");
  const Trace trace = parse(sink.jsonl());
  EXPECT_EQ(trace.dropped, 2u);
}

TEST(TraceReaderTest, ReportsMalformedLines) {
  std::istringstream in("{\"t\":1,\"seq\":0,\"component\":\"c\"\nnot json\n");
  std::string error;
  EXPECT_FALSE(aft::tools::parse_trace(in, error).has_value());
  EXPECT_NE(error.find("line 1"), std::string::npos);
}

TEST(TraceReaderTest, BinaryDecodesIdenticallyToJsonl) {
  // Every field kind, span/cause refs, time deltas, escapes, non-finite
  // doubles: the binary reader must produce the exact event sequence the
  // JSONL reader does, so every analysis (and `aft_trace diff`) is
  // format-blind.
  TraceSink sink;
  sink.set_time(3);
  const auto origin = sink.emit(
      "hw.inject", "seu",
      {{"addr", 42u}, {"delta", std::int64_t{-17}}, {"rate", 0.125}});
  sink.set_cause(origin);
  sink.set_span(origin);
  sink.set_time(1000000);
  sink.emit("detect", "latch",
            {{"latched", true},
             {"s", "a\"b\\c\n\x01"},
             {"nan", std::nan("")},
             {"inf", -1.0 / 0.0}});
  sink.set_cause(aft::obs::kNoEvent);
  sink.set_span(aft::obs::kNoEvent);
  sink.set_time(1000001);
  sink.emit("detect", "clear");

  const Trace from_jsonl = parse(sink.jsonl());
  std::string error;
  const auto from_bin = aft::tools::parse_trace_data(sink.binary(), error);
  ASSERT_TRUE(from_bin.has_value()) << error;

  EXPECT_TRUE(
      aft::tools::diff_traces(from_jsonl, *from_bin, "jsonl", "bin").identical);
  ASSERT_EQ(from_bin->events.size(), 3u);
  const TraceEvent& e0 = from_bin->events[0];
  EXPECT_EQ(e0.t, 3u);
  EXPECT_EQ(*e0.field("addr"), "42");
  EXPECT_EQ(*e0.field("delta"), "-17");
  EXPECT_EQ(*e0.field("rate"), "0.125");
  const TraceEvent& e1 = from_bin->events[1];
  EXPECT_EQ(e1.t, 1000000u);
  EXPECT_EQ(e1.cause, 0);
  EXPECT_EQ(*e1.field("latched"), "true");
  EXPECT_EQ(*e1.field("s"), "a\"b\\c\n\x01");
  EXPECT_EQ(*e1.field("nan"), "nan");
  EXPECT_EQ(*e1.field("inf"), "-inf");
  EXPECT_EQ(from_bin->events[2].cause, -1);
}

TEST(TraceReaderTest, BinaryTruncationFooterIsSynthesized) {
  TraceSink sink(/*max_events=*/1);
  sink.set_time(7);
  sink.emit("c", "kept");
  sink.emit("c", "dropped");
  sink.emit("c", "dropped");
  std::string error;
  const auto trace = aft::tools::parse_trace_data(sink.binary(), error);
  ASSERT_TRUE(trace.has_value()) << error;
  EXPECT_EQ(trace->dropped, 2u);
  // The reader synthesizes the same trace/truncated footer the JSONL
  // writer appends, so format choice cannot change what analyses see.
  ASSERT_EQ(trace->events.size(), 2u);
  EXPECT_EQ(trace->events.back().component, "trace");
  EXPECT_EQ(trace->events.back().event, "truncated");
  EXPECT_EQ(*trace->events.back().field("dropped"), "2");
}

TEST(TraceReaderTest, UnknownBinaryVersionIsRejectedWithClearMessage) {
  TraceSink sink;
  sink.emit("c", "e");
  std::string bin = sink.binary();
  bin[4] = 9;  // future version
  std::string error;
  EXPECT_FALSE(aft::tools::parse_trace_data(bin, error).has_value());
  EXPECT_NE(error.find("unsupported binary trace version 9"),
            std::string::npos);
}

TEST(TraceReaderTest, CorruptBinaryIsRejectedNotMisread) {
  TraceSink sink;
  sink.set_cause(sink.emit("c", "e", {{"k", 1u}}));
  sink.emit("c", "f");
  const std::string good = sink.binary();
  std::string error;

  // Truncated mid-record.
  EXPECT_FALSE(
      aft::tools::parse_trace_data(good.substr(0, good.size() - 2), error)
          .has_value());
  EXPECT_NE(error.find("corrupt binary trace"), std::string::npos);

  // Header shorter than the magic.
  EXPECT_FALSE(aft::tools::parse_trace_data("AFT", error).has_value());

  // A cause delta pointing before the first record must not wrap around.
  // Hand-built file: header, one string "c", one record, no drops; the
  // record body claims cause = seq - 5 on seq 0.
  const std::string bad =
      std::string("AFTB\x01\x00", 6) + std::string("\x01\x01", 2) + "c" +
      std::string("\x01\x00", 2) +         // record_count=1, dropped=0
      std::string("\x06", 1) +             // body length
      std::string("\x00\x02\x05\x00\x00\x00", 6);  // t, flags, cause, c, e, 0
  EXPECT_FALSE(aft::tools::parse_trace_data(bad, error).has_value());
  EXPECT_NE(error.find("bad cause ref"), std::string::npos);
}

TEST(TraceReaderTest, LoadTraceSniffsBinaryFilesByMagic) {
  TraceSink sink;
  sink.set_time(4);
  sink.emit("c", "e", {{"k", "v"}});
  const std::string path = "/tmp/aft_trace_test_sniff.bin";
  {
    std::ofstream out(path, std::ios::binary);
    sink.write_binary(out);
  }
  std::string error;
  const auto trace = aft::tools::load_trace(path, error);
  ASSERT_TRUE(trace.has_value()) << error;
  ASSERT_EQ(trace->events.size(), 1u);
  EXPECT_EQ(trace->events[0].component, "c");
  EXPECT_EQ(*trace->events[0].field("k"), "v");
}

TEST(TraceAnalysisTest, CausalChainWalksToRootAndWhyRendersIt) {
  TraceSink sink;
  sink.set_time(10);
  const auto origin = sink.emit("hw.inject", "seu", {{"addr", 7u}});
  sink.set_cause(origin);
  sink.set_time(12);
  sink.set_cause(sink.emit("detect.dual", "suspend"));
  sink.set_time(15);
  sink.emit("autonomic.switchboard", "raise", {{"replicas", 5u}});

  const Trace trace = parse(sink.jsonl());
  const auto chain = aft::tools::causal_chain(trace, 2);
  ASSERT_EQ(chain.size(), 3u);
  EXPECT_EQ(chain.front()->component, "hw.inject");
  EXPECT_EQ(chain.back()->event, "raise");

  const std::string why = aft::tools::render_why(trace, 2);
  EXPECT_NE(why.find("#0 t=10 hw.inject/seu addr=7"), std::string::npos);
  EXPECT_NE(why.find("-> #2 t=15 autonomic.switchboard/raise"),
            std::string::npos);
}

TEST(TraceAnalysisTest, LatencyPairsStagesPerChainWithAddrFallback) {
  TraceSink sink;
  // Chain A: cause-linked inject -> detect (2 ticks) -> repair (5 ticks).
  sink.set_time(10);
  sink.set_cause(sink.emit("hw.inject", "seu", {{"addr", 1u}}));
  sink.set_time(12);
  sink.emit("detect.dual", "suspend");
  sink.set_time(15);
  sink.emit("mem.remap", "remap", {{"addr", 1u}});
  sink.set_cause(aft::obs::kNoEvent);
  // Chain B: no cause link, but the detection names the injected address —
  // the addr fallback must attribute it (4 ticks).
  sink.set_time(20);
  sink.emit("hw.inject", "stuck", {{"addr", 9u}});
  sink.set_time(24);
  sink.emit("mem.ecc", "corrected", {{"addr", 9u}});
  // Orphan: a detection with no ancestor and no matching address.
  sink.set_time(30);
  sink.emit("detect.watchdog", "miss", {{"channel", 3u}});

  const auto report = aft::tools::compute_latency(parse(sink.jsonl()));
  EXPECT_EQ(report.inject_to_detect.count, 2u);
  EXPECT_EQ(report.inject_to_detect.min, 2u);
  EXPECT_EQ(report.inject_to_detect.max, 4u);
  EXPECT_EQ(report.inject_to_repair.count, 1u);
  EXPECT_EQ(report.inject_to_repair.min, 5u);
  EXPECT_EQ(report.orphan_detects, 1u);
}

TEST(TraceAnalysisTest, DiffDetectsCensusAndOrderDivergence) {
  TraceSink a;
  a.emit("c", "x");
  a.emit("c", "y");
  TraceSink b;
  b.emit("c", "x");
  b.set_time(1);
  b.emit("c", "z");

  const Trace ta = parse(a.jsonl());
  const Trace tb = parse(b.jsonl());
  EXPECT_TRUE(aft::tools::diff_traces(ta, ta, "a", "a2").identical);
  const auto diff = aft::tools::diff_traces(ta, tb, "a", "b");
  EXPECT_FALSE(diff.identical);
  EXPECT_NE(diff.report.find("c/y"), std::string::npos);
  EXPECT_NE(diff.report.find("first divergence at seq 1"), std::string::npos);
}

TEST(TraceAnalysisTest, ChromeExportPairsSpansIntoSlices) {
  TraceSink sink;
  sink.emit("bench", "span-begin", {{"name", "run"}});
  sink.set_span(0);
  sink.set_time(2);
  sink.emit("mem.ecc", "corrected", {{"addr", 3u}});
  sink.set_time(9);
  sink.emit("bench", "span-end");
  const std::string json = aft::tools::to_chrome_trace(parse(sink.jsonl()));
  EXPECT_NE(json.find(R"("name":"run","ph":"X","dur":9)"), std::string::npos);
  EXPECT_NE(json.find(R"("name":"mem.ecc/corrected","ph":"i")"),
            std::string::npos);
  // span-end folds into the slice instead of appearing as its own event.
  EXPECT_EQ(json.find("span-end"), std::string::npos);
}

TEST(TraceAnalysisTest, SummaryCountsClassesAndChains) {
  TraceSink sink;
  sink.set_cause(sink.emit("hw.inject", "seu"));
  sink.emit("detect.dual", "suspend");
  sink.emit("autonomic.switchboard", "raise");
  const std::string summary =
      aft::tools::render_summary(parse(sink.jsonl()));
  EXPECT_NE(summary.find("injections: 1"), std::string::npos);
  EXPECT_NE(summary.find("detections: 1"), std::string::npos);
  EXPECT_NE(summary.find("repairs: 1"), std::string::npos);
  EXPECT_NE(summary.find("causal chains: 1"), std::string::npos);
}

#if !defined(AFT_OBS_DISABLED)

// Acceptance: cause chains survive the wire.  A message published on node
// A's bus and re-published on node B's bus by the bridge pair must leave a
// trace in which `why <remote publish>` walks back through the link send to
// the originating publish on A.
TEST(TraceAnalysisTest, WhyOnARemotePublishReachesTheOriginatingPublish) {
  TraceSink sink;
  std::string jsonl;
  {
    ScopedObs scope(&sink, nullptr);
    aft::sim::Simulator sim;
    aft::arch::EventBus bus_a;
    aft::arch::EventBus bus_b;
    aft::net::Link a2b(sim, "a->b", aft::net::LinkFaults{}, 51);
    aft::net::Link b2a(sim, "b->a", aft::net::LinkFaults{}, 52);
    aft::net::Endpoint ep_a(sim, "node-a", 53);
    aft::net::Endpoint ep_b(sim, "node-b", 54);
    ep_a.attach(b2a, a2b);
    ep_b.attach(a2b, b2a);
    aft::net::BusBridge bridge_a(bus_a, ep_a, "A");
    aft::net::BusBridge bridge_b(bus_b, ep_b, "B");
    bridge_a.forward_topic("detect.clash");
    bus_a.publish({"detect.clash", "detector-7", "threshold crossed"});
    sim.run_all();
    jsonl = sink.jsonl();
  }
  const Trace trace = parse(jsonl);

  // The remote re-publish is the second arch.bus/publish record.
  const TraceEvent* remote = nullptr;
  for (const TraceEvent& e : trace.events) {
    if (e.component == "arch.bus" && e.event == "publish") remote = &e;
  }
  ASSERT_NE(remote, nullptr);

  const auto chain = aft::tools::causal_chain(trace, remote->seq);
  ASSERT_EQ(chain.size(), 3u);
  EXPECT_EQ(chain[0]->component, "arch.bus");
  EXPECT_EQ(chain[0]->event, "publish");
  EXPECT_NE(chain[0], remote);  // the *originating* publish on node A
  EXPECT_EQ(chain[1]->component, "net.link");
  EXPECT_EQ(chain[1]->event, "send");
  EXPECT_EQ(chain[2], remote);

  const std::string why = aft::tools::render_why(trace, remote->seq);
  EXPECT_NE(why.find("arch.bus/publish"), std::string::npos);
  EXPECT_NE(why.find("net.link/send"), std::string::npos);
}

// Acceptance: an RPC completion chains back to its call through both wire
// hops (request send and response send).
TEST(TraceAnalysisTest, WhyOnAnRpcCompletionReachesTheCall) {
  TraceSink sink;
  std::string jsonl;
  {
    ScopedObs scope(&sink, nullptr);
    aft::sim::Simulator sim;
    aft::net::Link a2b(sim, "a->b", aft::net::LinkFaults{}, 61);
    aft::net::Link b2a(sim, "b->a", aft::net::LinkFaults{}, 62);
    aft::net::Endpoint client(sim, "client", 63);
    aft::net::Endpoint server(sim, "server", 64);
    client.attach(b2a, a2b);
    server.attach(a2b, b2a);
    server.serve("echo",
                 [](const std::string& request, std::string& response) {
                   response = request;
                   return true;
                 });
    client.call("echo", "hi", aft::net::CallOptions{},
                [](const aft::net::RpcResult&) {});
    sim.run_all();
    jsonl = sink.jsonl();
  }
  const Trace trace = parse(jsonl);

  const TraceEvent* done = nullptr;
  for (const TraceEvent& e : trace.events) {
    if (e.component == "net.rpc" && e.event == "done") done = &e;
  }
  ASSERT_NE(done, nullptr);

  // done <- response send <- request send <- call.
  const auto chain = aft::tools::causal_chain(trace, done->seq);
  ASSERT_EQ(chain.size(), 4u);
  EXPECT_EQ(chain[0]->component, "net.rpc");
  EXPECT_EQ(chain[0]->event, "call");
  EXPECT_EQ(chain[1]->component, "net.link");
  EXPECT_EQ(chain[1]->event, "send");
  EXPECT_EQ(chain[2]->component, "net.link");
  EXPECT_EQ(chain[2]->event, "send");
  EXPECT_EQ(chain[3], done);
}

// Acceptance: on a real Fig. 6 adaptation trace, walking the causal chain
// of a switchboard raise must land on the injected fault that provoked it.
TEST(TraceAnalysisTest, Fig6RaiseChainsBackToInjectedFault) {
  TraceSink sink;
  std::string jsonl;
  {
    ScopedObs scope(&sink, nullptr);
    aft::autonomic::ExperimentConfig config;
    config.seed = 2009;
    config.policy.lower_after = 1000;
    const auto result = aft::autonomic::run_adaptation_experiment(
        config, aft::autonomic::fig6_script());
    ASSERT_GT(result.raises, 0u);
    jsonl = sink.jsonl();
  }
  const Trace trace = parse(jsonl);

  const TraceEvent* raise = nullptr;
  for (const TraceEvent& e : trace.events) {
    if (e.component == "autonomic.switchboard" && e.event == "raise") {
      raise = &e;
      break;
    }
  }
  ASSERT_NE(raise, nullptr) << "fig6 run produced no raise";

  const auto chain = aft::tools::causal_chain(trace, raise->seq);
  ASSERT_GE(chain.size(), 3u);
  EXPECT_EQ(chain.front()->component, "hw.inject");
  EXPECT_EQ(chain.front()->event, "corrupt");
  // The detector-side symptom sits between the fault and the reaction.
  EXPECT_EQ(chain[chain.size() - 2]->component, "vote.farm");
  EXPECT_EQ(chain[chain.size() - 2]->event, "dissent");
  EXPECT_EQ(chain.back(), raise);

  // And the latency analysis attributes detections to injections.
  const auto latency = aft::tools::compute_latency(trace);
  EXPECT_GT(latency.inject_to_detect.count, 0u);
}

TEST(TraceAnalysisTest, SloPairsDoneWithCallViaChainAndFallback) {
  TraceSink sink;
  // Chain A: cause-linked call -> done, ok in 8 ticks after 1 attempt.
  sink.set_time(10);
  sink.set_cause(sink.emit(
      "net.rpc", "call",
      {{"endpoint", "client"}, {"id", 1u}, {"method", "echo"}}));
  sink.set_time(18);
  sink.emit("net.rpc", "done",
            {{"endpoint", "client"}, {"id", 1u}, {"status", "ok"},
             {"attempts", 1u}});
  sink.set_cause(aft::obs::kNoEvent);
  // Chain B: the cause link is cut (trace cap shape) — the endpoint+id
  // fallback must still pair it.  Fails after 3 attempts, 30 ticks.
  sink.set_time(20);
  sink.emit("net.rpc", "call",
            {{"endpoint", "client"}, {"id", 2u}, {"method", "echo"}});
  sink.set_time(50);
  sink.emit("net.rpc", "done",
            {{"endpoint", "client"}, {"id", 2u}, {"status", "deadline"},
             {"attempts", 3u}});

  const Trace trace = parse(sink.jsonl());
  const auto report = aft::tools::compute_slo(trace);
  EXPECT_EQ(report.ok.count, 1u);
  EXPECT_EQ(report.ok.min, 8u);
  EXPECT_EQ(report.ok.max, 8u);
  EXPECT_EQ(report.fail.count, 1u);
  EXPECT_EQ(report.fail.max, 30u);
  EXPECT_EQ(report.attempts.count, 2u);
  EXPECT_EQ(report.attempts.max, 3u);
  ASSERT_TRUE(report.has_worst);
  EXPECT_EQ(report.worst_seq, 3u);  // chain B's done is the slowest

  const std::string rendered = aft::tools::render_slo(trace);
  EXPECT_NE(rendered.find("rpc call latency"), std::string::npos);
  EXPECT_NE(rendered.find("worst chain (done seq 3)"), std::string::npos);
  // Chain B's cause link is cut, so the drill-down starts at the done
  // record itself (the chain walk has nothing earlier to show).
  EXPECT_NE(rendered.find("net.rpc/done"), std::string::npos);
}

TEST(TraceAnalysisTest, LatencyQuantilesExposedPerStage) {
  TraceSink sink;
  for (std::uint64_t i = 0; i < 100; ++i) {
    sink.set_time(i * 100);
    sink.set_cause(sink.emit("hw.inject", "seu", {{"addr", i}}));
    sink.set_time(i * 100 + 1 + i % 10);  // detect latencies 1..10
    sink.emit("mem.ecc", "corrected", {{"addr", i}});
    sink.set_cause(aft::obs::kNoEvent);
  }
  const auto report = aft::tools::compute_latency(parse(sink.jsonl()));
  EXPECT_EQ(report.inject_to_detect.count, 100u);
  EXPECT_EQ(report.inject_to_detect.p50, 5u);
  EXPECT_EQ(report.inject_to_detect.p99, 10u);
  EXPECT_EQ(report.inject_to_detect.p999, 10u);
}

TEST(TraceAnalysisTest, EmptyTracesRenderHintsNotSilence) {
  // A trace with no matching chains used to render as zero-row noise (or
  // nothing at all); each command now says what it looked for.
  TraceSink sink;
  sink.emit("c", "e");  // non-empty trace, but no chains of any kind
  const Trace trace = parse(sink.jsonl());
  EXPECT_EQ(aft::tools::render_latency(trace),
            "no inject->detect chains found\n");
  EXPECT_EQ(aft::tools::render_slo(trace), "no rpc call chains found\n");
  EXPECT_EQ(aft::tools::render_timeline(Trace{}),
            "no events in trace (nothing to window)\n");
}

TEST(TraceAnalysisTest, TimelineWindowsEventCensus) {
  TraceSink sink;
  sink.set_time(0);
  sink.emit("hw.inject", "seu", {{"addr", 1u}});
  sink.set_time(5);
  sink.emit("mem.ecc", "corrected", {{"addr", 1u}});
  sink.set_time(25);
  sink.emit("c", "quiet");

  const std::string out =
      aft::tools::render_timeline(parse(sink.jsonl()), /*window_ticks=*/10);
  EXPECT_NE(out.find("timeline (window=10 ticks, 2 non-empty windows)"),
            std::string::npos);
  EXPECT_NE(out.find("window-start  events  inject  detect  repair"),
            std::string::npos);
  // Window 0 holds the inject + the detect; window 2 the quiet event.
  EXPECT_NE(out.find("\n0             2       1       1       0"),
            std::string::npos);
  EXPECT_NE(out.find("\n20            1       0       0       0"),
            std::string::npos);
}

#endif  // !AFT_OBS_DISABLED

}  // namespace
