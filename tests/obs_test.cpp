// Tests for the observability layer: JSONL trace shape, deterministic seq
// assignment, merge order, metrics JSON export, and the thread-local
// install/uninstall discipline the instrumentation macros rely on.
#include <charconv>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "obs/cli.hpp"
#include "obs/flight.hpp"
#include "obs/metrics.hpp"
#include "obs/obs.hpp"
#include "obs/trace.hpp"
#include "sim/simulator.hpp"

namespace {

using aft::obs::Field;
using aft::obs::MetricsRegistry;
using aft::obs::ScopedObs;
using aft::obs::TraceSink;

std::vector<std::string> lines_of(const std::string& text) {
  std::vector<std::string> out;
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) out.push_back(line);
  return out;
}

TEST(TraceSinkTest, EmitsJsonlKeyedByTimeAndSeq) {
  TraceSink sink;
  sink.set_time(7);
  sink.emit("mem.ecc", "corrected", {{"addr", 42u}, {"origin", "read"}});
  sink.set_time(9);
  sink.emit("detect", "latch", {{"score", 3.5}, {"latched", true}});

  const auto lines = lines_of(sink.jsonl());
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_EQ(lines[0],
            R"({"t":7,"seq":0,"component":"mem.ecc","event":"corrected","addr":42,"origin":"read"})");
  EXPECT_EQ(lines[1],
            R"({"t":9,"seq":1,"component":"detect","event":"latch","score":3.5,"latched":true})");
}

TEST(TraceSinkTest, EscapesJsonStrings) {
  TraceSink sink;
  sink.emit("c", "e", {{"s", "a\"b\\c\n\t"}});
  const auto lines = lines_of(sink.jsonl());
  ASSERT_EQ(lines.size(), 1u);
  EXPECT_NE(lines[0].find(R"("s":"a\"b\\c\n\t")"), std::string::npos);
}

TEST(TraceSinkTest, FieldKindsRenderAsJsonTypes) {
  TraceSink sink;
  sink.emit("c", "e",
            {{"u", std::uint64_t{18446744073709551615ULL}},
             {"i", std::int64_t{-5}},
             {"f", 0.25},
             {"b", false}});
  const std::string line = lines_of(sink.jsonl()).at(0);
  EXPECT_NE(line.find(R"("u":18446744073709551615)"), std::string::npos);
  EXPECT_NE(line.find(R"("i":-5)"), std::string::npos);
  EXPECT_NE(line.find(R"("f":0.25)"), std::string::npos);
  EXPECT_NE(line.find(R"("b":false)"), std::string::npos);
}

TEST(TraceSinkTest, SeqAssignedAtWriteTimeAcrossAppendedSinks) {
  // The campaign runner merges per-job sinks in job order; seq must come
  // out gapless and increasing in the merged file, independent of how the
  // events were distributed over per-job sinks.
  TraceSink job0;
  job0.set_time(1);
  job0.emit("a", "x");
  TraceSink job1;
  job1.set_time(2);
  job1.emit("b", "y");
  job1.emit("b", "z");

  TraceSink merged;
  merged.append(std::move(job0));
  merged.append(std::move(job1));
  EXPECT_TRUE(job0.empty());  // NOLINT(bugprone-use-after-move): documented

  const auto lines = lines_of(merged.jsonl());
  ASSERT_EQ(lines.size(), 3u);
  EXPECT_NE(lines[0].find(R"("seq":0)"), std::string::npos);
  EXPECT_NE(lines[1].find(R"("seq":1)"), std::string::npos);
  EXPECT_NE(lines[2].find(R"("seq":2)"), std::string::npos);
}

TEST(TraceSinkTest, CapsEventsAndReportsTruncation) {
  TraceSink sink(/*max_events=*/3);
  for (int i = 0; i < 10; ++i) sink.emit("c", "e", {{"i", i}});
  EXPECT_EQ(sink.size(), 3u);
  EXPECT_EQ(sink.dropped(), 7u);
  const auto lines = lines_of(sink.jsonl());
  ASSERT_EQ(lines.size(), 4u);  // 3 events + truncation footer
  EXPECT_NE(lines.back().find(R"("event":"truncated")"), std::string::npos);
  EXPECT_NE(lines.back().find(R"("dropped":7)"), std::string::npos);
}

TEST(TraceSinkTest, BinaryHeaderCarriesMagicVersionAndFlags) {
  TraceSink sink;
  sink.emit("c", "e");
  const std::string bin = sink.binary();
  ASSERT_GE(bin.size(), 6u);
  EXPECT_EQ(bin.substr(0, 4), "AFTB");
  EXPECT_EQ(bin[4], static_cast<char>(aft::obs::kTraceBinaryVersion));
  EXPECT_EQ(bin[5], 0);  // flags
}

TEST(TraceSinkTest, BinaryIsCompactOnRepetitiveTraces) {
  // The interned string table plus varint/delta coding is the whole point
  // of the format: a steady-state trace repeats the same components, events
  // and keys thousands of times, and the binary encoding must amortize
  // them to at least 5x below JSONL.
  TraceSink sink;
  for (int i = 0; i < 5000; ++i) {
    sink.set_time(static_cast<std::uint64_t>(i));
    sink.emit("arch.bus", "publish-batch",
              {{"topic", "daemon-7"}, {"count", 256u}, {"subscribers", 5u}});
  }
  const std::string jsonl = sink.jsonl();
  const std::string bin = sink.binary();
  EXPECT_GE(jsonl.size(), 5 * bin.size());
}

TEST(TraceSinkTest, AppendedSinksSerializeIdenticallyToDirectEmission) {
  // Campaign merge must be byte-deterministic: per-job sinks appended in
  // job order serialize exactly like the same events emitted into a single
  // sink — in both formats.  (The jobs interned independently, so append()
  // has to re-intern by content for this to hold.)
  const auto emit_job0 = [](TraceSink& s) {
    s.set_time(1);
    s.emit("a", "x", {{"k", "v"}});
  };
  const auto emit_job1 = [](TraceSink& s) {
    s.set_time(2);
    const aft::obs::EventId ev = s.emit("b", "y");
    s.set_cause(ev);
    s.emit("a", "z", {{"k", "w"}});
    s.set_cause(aft::obs::kNoEvent);
  };

  TraceSink direct;
  emit_job0(direct);
  emit_job1(direct);

  TraceSink job0;
  emit_job0(job0);
  TraceSink job1;
  emit_job1(job1);
  TraceSink merged;
  merged.append(std::move(job0));
  merged.append(std::move(job1));

  EXPECT_EQ(merged.jsonl(), direct.jsonl());
  EXPECT_EQ(merged.binary(), direct.binary());
}

TEST(MetricsRegistryTest, CountersGaugesAndStats) {
  MetricsRegistry reg;
  reg.add("x", 2);
  reg.add("x", 3);
  reg.set_gauge("level", 1.5);
  reg.observe("lat", 1.0);
  reg.observe("lat", 3.0);

  EXPECT_EQ(reg.counter("x"), 5u);
  EXPECT_EQ(reg.counter("missing"), 0u);
  EXPECT_DOUBLE_EQ(reg.gauge("level"), 1.5);
  ASSERT_NE(reg.find_stat("lat"), nullptr);
  EXPECT_EQ(reg.find_stat("lat")->count(), 2u);
  EXPECT_DOUBLE_EQ(reg.find_stat("lat")->mean(), 2.0);
}

TEST(MetricsRegistryTest, JsonExportIsSortedAndComplete) {
  MetricsRegistry reg;
  reg.add("z.count", 1);
  reg.add("a.count", 2);
  reg.set_gauge("g", 4.0);
  reg.observe("h", 2.0);
  const std::string json = reg.json();
  // Keys sorted: "a.count" appears before "z.count".
  EXPECT_LT(json.find("a.count"), json.find("z.count"));
  EXPECT_NE(json.find(R"("counters":{)"), std::string::npos);
  EXPECT_NE(json.find(R"("gauges":{"g":4)"), std::string::npos);
  EXPECT_NE(json.find(R"("stats":{"h":{"count":1)"), std::string::npos);
}

TEST(MetricsRegistryTest, QuantilesSectionExportsP50P99P999Max) {
  MetricsRegistry reg;
  for (int i = 1; i <= 100; ++i) reg.observe("lat", static_cast<double>(i));
  const std::string json = reg.json();
  // Values 1..100 straddle the exact range (< 32) and the first log
  // majors; the exported quantiles obey the documented <= 1/32 overshoot.
  EXPECT_NE(json.find(R"("quantiles":{"lat":{"count":100,"p50":)"),
            std::string::npos);
  ASSERT_NE(reg.find_stat("lat"), nullptr);
  const aft::obs::Stat& s = *reg.find_stat("lat");
  EXPECT_GE(s.quantile(0.5), 50u);
  EXPECT_LE(s.quantile(0.5), 52u);
  EXPECT_GE(s.quantile(0.99), 99u);
  EXPECT_LE(s.quantile(0.99), 100u);
  EXPECT_EQ(s.quantile(1.0), 100u);
  EXPECT_NE(json.find(R"("max":100)"), std::string::npos);
}

TEST(MetricsRegistryTest, EmptyStatOmitsMinMaxInJson) {
  // A stat that was registered (e.g. a hoisted handle or a timeline
  // registration) but never fed must not export RunningStats' 0.0
  // placeholder as if it were a real extreme.
  MetricsRegistry reg;
  static_cast<void>(reg.stat("registered.but.empty"));
  const std::string json = reg.json();
  EXPECT_NE(
      json.find(R"("registered.but.empty":{"count":0,"mean":0,"stddev":0})"),
      std::string::npos);
  // The quantiles entry likewise carries only the count.
  const std::size_t q = json.find(R"("quantiles")");
  ASSERT_NE(q, std::string::npos);
  EXPECT_NE(json.find(R"("registered.but.empty":{"count":0})", q),
            std::string::npos);
  // A fed stat still exports min/max.
  reg.observe("fed", 3.0);
  const std::string json2 = reg.json();
  EXPECT_NE(json2.find(R"("fed":{"count":1,"mean":3,"stddev":0,"min":3,"max":3})"),
            std::string::npos);
}

TEST(MetricsRegistryTest, StatHandleIsStableAndFeedsSameAccumulator) {
  MetricsRegistry reg;
  aft::obs::Stat& s = reg.stat("lat");
  s.add(2.0);
  reg.observe("lat", 4.0);
  aft::obs::Stat& again = reg.stat("lat");
  EXPECT_EQ(&s, &again);
  EXPECT_EQ(s.count(), 2u);
  EXPECT_EQ(s.quantile(1.0), 4u);
}

TEST(MetricsRegistryTest, MergeSumsCountersAndFoldsStats) {
  MetricsRegistry a;
  a.add("n", 1);
  a.observe("s", 1.0);
  a.set_gauge("g", 1.0);
  MetricsRegistry b;
  b.add("n", 2);
  b.add("only_b", 7);
  b.observe("s", 3.0);
  b.set_gauge("g", 2.0);

  a.merge(b);
  EXPECT_EQ(a.counter("n"), 3u);
  EXPECT_EQ(a.counter("only_b"), 7u);
  EXPECT_DOUBLE_EQ(a.gauge("g"), 2.0);  // later job wins
  ASSERT_NE(a.find_stat("s"), nullptr);
  EXPECT_EQ(a.find_stat("s")->count(), 2u);
  EXPECT_DOUBLE_EQ(a.find_stat("s")->mean(), 2.0);
}

TEST(ScopedObsTest, MacrosAreNoOpsWithoutInstalledSinks) {
  // Must not crash or allocate a sink implicitly — and under -DAFT_OBS=OFF
  // this is the only behaviour the macros have at all.
  AFT_TRACE("c", "e", {{"k", 1}});
  AFT_METRIC_ADD("n", 1);
  AFT_METRIC_OBSERVE("lat", 1.0);
  AFT_OBS_SET_TIME(5);
  SUCCEED();
}

// The remaining tests exercise the thread-local install path, which is
// compiled out under -DAFT_OBS=OFF (obs::trace() is constexpr nullptr).
#if !defined(AFT_OBS_DISABLED)

TEST(ScopedObsTest, InstallsAndRestoresThreadLocals) {
  EXPECT_EQ(aft::obs::trace(), nullptr);
  EXPECT_EQ(aft::obs::metrics(), nullptr);
  TraceSink sink;
  MetricsRegistry reg;
  {
    ScopedObs scope(&sink, &reg);
    EXPECT_EQ(aft::obs::trace(), &sink);
    EXPECT_EQ(aft::obs::metrics(), &reg);
    {
      ScopedObs inner(nullptr, nullptr);  // nestable: temporarily silences
      EXPECT_EQ(aft::obs::trace(), nullptr);
    }
    EXPECT_EQ(aft::obs::trace(), &sink);
  }
  EXPECT_EQ(aft::obs::trace(), nullptr);
  EXPECT_EQ(aft::obs::metrics(), nullptr);
}

TEST(ScopedObsTest, MacrosRouteToInstalledSinks) {
  TraceSink sink;
  MetricsRegistry reg;
  ScopedObs scope(&sink, &reg);
  AFT_OBS_SET_TIME(3);
  AFT_TRACE("c", "e", {{"k", 1}});
  AFT_METRIC_ADD("n", 2);
  AFT_METRIC_OBSERVE("lat", 7.0);
  EXPECT_EQ(sink.size(), 1u);
  EXPECT_EQ(sink.time(), 3u);
  EXPECT_EQ(reg.counter("n"), 2u);
  ASSERT_NE(reg.find_stat("lat"), nullptr);
  EXPECT_EQ(reg.find_stat("lat")->quantile(0.5), 7u);
  // set_obs_time drives the registry clock too (timeline windowing).
  EXPECT_EQ(reg.time(), 3u);
}

TEST(ObsCliTest, ParsesFlagsAndInstallsSinks) {
  std::string prog = "bench";
  std::string t1 = "--trace";
  std::string t2 = "/tmp/aft_obs_test_trace.jsonl";
  std::string m1 = "--metrics=/tmp/aft_obs_test_metrics.json";
  std::string d = "--trace-detail";
  char* argv[] = {prog.data(), t1.data(), t2.data(), m1.data(), d.data()};
  {
    aft::obs::ObsCli cli(5, argv);
    EXPECT_TRUE(cli.tracing());
    EXPECT_TRUE(cli.metering());
    ASSERT_NE(aft::obs::trace(), nullptr);
    EXPECT_TRUE(aft::obs::trace()->detail());
    AFT_TRACE("t", "e");
    AFT_METRIC_ADD("m", 1);
  }
  // Files were written on destruction.
  std::ifstream trace_in("/tmp/aft_obs_test_trace.jsonl");
  std::string line;
  ASSERT_TRUE(std::getline(trace_in, line));
  EXPECT_NE(line.find(R"("event":"e")"), std::string::npos);
  std::ifstream metrics_in("/tmp/aft_obs_test_metrics.json");
  std::stringstream buf;
  buf << metrics_in.rdbuf();
  EXPECT_NE(buf.str().find(R"("m":1)"), std::string::npos);
}

#endif  // !AFT_OBS_DISABLED

TEST(ObsCliTest, NoFlagsMeansNoSinks) {
  std::string prog = "bench";
  char* argv[] = {prog.data()};
  aft::obs::ObsCli cli(1, argv);
  EXPECT_FALSE(cli.tracing());
  EXPECT_FALSE(cli.metering());
  EXPECT_EQ(aft::obs::trace(), nullptr);
}

// --- Field rendering -------------------------------------------------------

TEST(FieldTest, AppendValueEscapesControlCharactersAndKeepsUtf8) {
  std::string out;
  Field("k", "tab\there\x01 snow\xE2\x98\x83").append_value(out);
  // Control characters become \t / ; multi-byte UTF-8 passes through
  // untouched (JSONL stays valid UTF-8 without mangling non-ASCII names).
  EXPECT_EQ(out, "\"tab\\there\\u0001 snow\xE2\x98\x83\"");
}

TEST(FieldTest, AppendJsonStringEscapesEveryControlCharacter) {
  for (int c = 0; c < 0x20; ++c) {
    std::string out;
    const char raw[2] = {static_cast<char>(c), '\0'};
    aft::obs::append_json_string(out, std::string_view(raw, 1));
    ASSERT_GE(out.size(), 4u) << "control char " << c << " not escaped";
    for (const char ch : out) {
      ASSERT_TRUE(static_cast<unsigned char>(ch) >= 0x20)
          << "raw control byte leaked for " << c;
    }
  }
}

TEST(FieldTest, AppendJsonDoubleRoundTrips) {
  // to_chars emits the shortest representation that parses back exactly —
  // the property campaign diffs rely on (no locale, no precision drift).
  for (const double v : {0.25, 0.1, -0.0, 1e300, 3.141592653589793,
                         5e-324, -123456.789}) {
    std::string out;
    aft::obs::append_json_double(out, v);
    double parsed = 0.0;
    const auto [p, ec] =
        std::from_chars(out.data(), out.data() + out.size(), parsed);
    ASSERT_EQ(ec, std::errc()) << out;
    ASSERT_EQ(p, out.data() + out.size()) << out;
    EXPECT_EQ(parsed, v) << out;
    EXPECT_EQ(out.find(','), std::string::npos) << out;  // locale-proof
  }
}

// --- Span / cause serialization -------------------------------------------

TEST(TraceSinkTest, SpanAndCauseSerializedAfterSeqWhenSet) {
  TraceSink sink;
  sink.emit("c", "plain");
  sink.set_span(0);
  sink.set_cause(0);
  sink.set_time(4);
  sink.emit("c", "chained", {{"k", 1}});

  const auto lines = lines_of(sink.jsonl());
  ASSERT_EQ(lines.size(), 2u);
  // Unset refs are omitted entirely: pre-causality traces stay byte-stable.
  EXPECT_EQ(lines[0], R"({"t":0,"seq":0,"component":"c","event":"plain"})");
  EXPECT_EQ(lines[1],
            R"({"t":4,"seq":1,"span":0,"cause":0,"component":"c","event":"chained","k":1})");
}

TEST(TraceSinkTest, EmitReturnsFutureSeqAndNoEventAtCap) {
  TraceSink sink(/*max_events=*/2);
  EXPECT_EQ(sink.emit("c", "a"), 0u);
  EXPECT_EQ(sink.emit("c", "b"), 1u);
  EXPECT_EQ(sink.emit("c", "dropped"), aft::obs::kNoEvent);
}

TEST(TraceSinkTest, AppendRebasesSpanAndCauseReferences) {
  // Two campaign jobs, each with a job-local causal chain; after the merge
  // the second job's refs must point at its own (shifted) events.
  auto make_job = [] {
    TraceSink job;
    const aft::obs::EventId origin = job.emit("hw.inject", "seu");
    job.set_cause(origin);
    job.emit("detect", "latch");
    return job;
  };
  TraceSink merged;
  TraceSink job0 = make_job();
  TraceSink job1 = make_job();
  merged.append(std::move(job0));
  merged.append(std::move(job1));

  const auto lines = lines_of(merged.jsonl());
  ASSERT_EQ(lines.size(), 4u);
  EXPECT_NE(lines[1].find(R"("seq":1,"cause":0)"), std::string::npos);
  EXPECT_NE(lines[3].find(R"("seq":3,"cause":2)"), std::string::npos);
}

// --- Flight recorder (ring mechanics are runtime, not macro-gated) ---------

TEST(FlightRecorderTest, RingKeepsMostRecentRecordsAndLifetimeCount) {
  aft::obs::FlightRecorder recorder(/*capacity=*/3);
  for (std::uint64_t i = 0; i < 5; ++i) {
    recorder.record(i, "c", "e", aft::obs::kNoEvent, aft::obs::kNoEvent);
  }
  EXPECT_EQ(recorder.size(), 3u);
  EXPECT_EQ(recorder.recorded(), 5u);
  const auto records = recorder.snapshot();
  ASSERT_EQ(records.size(), 3u);
  EXPECT_EQ(records.front().t, 2u);  // oldest survivor
  EXPECT_EQ(records.back().t, 4u);
  recorder.clear();
  EXPECT_TRUE(recorder.empty());
  EXPECT_EQ(recorder.recorded(), 5u);  // lifetime counter survives drain
}

TEST(FlightRecorderTest, RenderJsonlEmitsHeaderThenRecords) {
  aft::obs::FlightRecorder recorder(4);
  recorder.record(7, "mem.ecc", "corrected", 2, aft::obs::kNoEvent);
  std::string out;
  aft::obs::FlightRecorder::render_jsonl(out, "test", recorder.snapshot());
  const auto lines = lines_of(out);
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_EQ(lines[0],
            R"({"component":"flight","event":"dump","reason":"test","records":1})");
  EXPECT_EQ(
      lines[1],
      R"({"t":7,"component":"mem.ecc","event":"corrected","span":2,"cause":-1})");
}

#if !defined(AFT_OBS_DISABLED)

// --- Spans -----------------------------------------------------------------

TEST(SpanGuardTest, NestedSpansEncodeTreeAndRestoreCurrent) {
  TraceSink sink;
  ScopedObs scope(&sink, nullptr);
  {
    AFT_SPAN("t", "outer");  // span-begin seq 0
    sink.emit("t", "a");     // span 0
    {
      AFT_SPAN("t", "inner");  // span-begin seq 2, parent span 0
      sink.emit("t", "b");     // span 2
    }                          // span-end, span 2
    sink.emit("t", "c");       // span 0 again
  }
  EXPECT_EQ(sink.span(), aft::obs::kNoEvent);

  const auto lines = lines_of(sink.jsonl());
  ASSERT_EQ(lines.size(), 7u);
  EXPECT_NE(lines[0].find(R"("event":"span-begin","name":"outer")"),
            std::string::npos);
  EXPECT_EQ(lines[0].find(R"("span":)"), std::string::npos);  // root span
  EXPECT_NE(lines[1].find(R"("span":0,"component":"t","event":"a")"),
            std::string::npos);
  // Inner begin carries the parent span — the file encodes the span tree.
  EXPECT_NE(lines[2].find(R"("span":0,"component":"t","event":"span-begin")"),
            std::string::npos);
  EXPECT_NE(lines[3].find(R"("span":2)"), std::string::npos);
  EXPECT_NE(lines[4].find(R"("span":2,"component":"t","event":"span-end")"),
            std::string::npos);
  EXPECT_NE(lines[5].find(R"("span":0,"component":"t","event":"c")"),
            std::string::npos);
  EXPECT_NE(lines[6].find(R"("span":0,"component":"t","event":"span-end")"),
            std::string::npos);
}

// --- Cause propagation through the simulation kernel -----------------------

TEST(SimulatorCauseTest, DispatchedEventsInheritSchedulingCause) {
  TraceSink sink;
  ScopedObs scope(&sink, nullptr);
  aft::sim::Simulator simulator;

  const aft::obs::EventId origin = sink.emit("hw.inject", "seu");
  sink.set_cause(origin);
  simulator.schedule_in(5, [&] { sink.emit("detect", "late"); });
  // The chain origin is scoped to its turn; the scheduled continuation must
  // still inherit it from the snapshot taken at schedule time.
  sink.set_cause(aft::obs::kNoEvent);
  sink.emit("other", "unrelated");
  simulator.run_until(10);

  const auto lines = lines_of(sink.jsonl());
  ASSERT_EQ(lines.size(), 3u);
  EXPECT_EQ(lines[1].find(R"("cause":)"), std::string::npos);
  EXPECT_NE(lines[2].find(R"("cause":0,"component":"detect","event":"late")"),
            std::string::npos);
}

// --- Flight dump into an installed sink ------------------------------------

TEST(FlightRecorderTest, DumpLandsInSinkAndDrainsRing) {
  TraceSink sink;
  ScopedObs scope(&sink, nullptr);
  aft::obs::FlightRecorder recorder(8);
  aft::obs::ScopedFlight flight_scope(&recorder);

  aft::obs::flight_note("mem.ecc", "corrected");
  aft::obs::flight_note("detect.dual", "suspend");
  aft::obs::flight_dump("test-incident");

  const std::string jsonl = sink.jsonl();
  EXPECT_NE(jsonl.find(R"("event":"dump","reason":"test-incident","records":2)"),
            std::string::npos);
  EXPECT_NE(jsonl.find(R"("rcomponent":"mem.ecc","revent":"corrected")"),
            std::string::npos);
  EXPECT_TRUE(recorder.empty());

  // Drained: a second dump must be a no-op, not a replay.
  const std::size_t size_before = sink.size();
  aft::obs::flight_dump("again");
  EXPECT_EQ(sink.size(), size_before);
}

TEST(FlightRecorderTest, SinkEmitsFeedTheInstalledRecorder) {
  aft::obs::FlightRecorder recorder(8);
  aft::obs::ScopedFlight flight_scope(&recorder);
  TraceSink sink;
  ScopedObs scope(&sink, nullptr);
  sink.set_time(42);
  sink.emit("c", "e");
  const auto records = recorder.snapshot();
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].t, 42u);
  EXPECT_EQ(records[0].component, "c");
}

#endif  // !AFT_OBS_DISABLED

// --- ObsCli usage errors ---------------------------------------------------

TEST(ObsCliDeathTest, MissingTraceOperandExitsWithUsage) {
  std::string prog = "bench";
  std::string flag = "--trace";
  char* argv[] = {prog.data(), flag.data()};
  EXPECT_EXIT(aft::obs::ObsCli(2, argv), ::testing::ExitedWithCode(2),
              "--trace requires a path operand");
}

TEST(ObsCliDeathTest, FlagFollowedByFlagExitsWithUsage) {
  std::string prog = "bench";
  std::string flag = "--trace";
  std::string next = "--metrics=m.json";
  char* argv[] = {prog.data(), flag.data(), next.data()};
  EXPECT_EXIT(aft::obs::ObsCli(3, argv), ::testing::ExitedWithCode(2),
              "--trace requires a path operand");
}

TEST(ObsCliDeathTest, EmptyMetricsOperandExitsWithUsage) {
  std::string prog = "bench";
  std::string flag = "--metrics=";
  char* argv[] = {prog.data(), flag.data()};
  EXPECT_EXIT(aft::obs::ObsCli(2, argv), ::testing::ExitedWithCode(2),
              "--metrics requires a path operand");
}

}  // namespace
