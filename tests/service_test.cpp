// Tests for the AutonomicReplicationService facade and the ScrubberDaemon.
#include <gtest/gtest.h>

#include "autonomic/service.hpp"
#include "hw/fault_injector.hpp"
#include "hw/memory_chip.hpp"
#include "mem/method_ecc.hpp"
#include "mem/scrubber.hpp"
#include "sim/simulator.hpp"
#include "util/rng.hpp"

namespace {

using aft::autonomic::AutonomicReplicationService;

// --- AutonomicReplicationService ------------------------------------------------

TEST(ServiceTest, HealthyCallsReturnVotedValue) {
  AutonomicReplicationService service(
      [](aft::vote::Ballot in, std::size_t) { return in * 3; },
      AutonomicReplicationService::Options{});
  for (int i = 0; i < 100; ++i) {
    const auto result = service.call(i);
    ASSERT_TRUE(result.has_value());
    EXPECT_EQ(*result, i * 3);
  }
  EXPECT_EQ(service.replicas(), 3u);
  EXPECT_EQ(service.calls(), 100u);
  EXPECT_EQ(service.failures(), 0u);
  EXPECT_LT(service.disturbance_level(), 1e-6);
}

TEST(ServiceTest, DisturbanceGrowsRedundancyAndAssumptionTracks) {
  bool disturb = false;
  aft::util::Xoshiro256 rng(3);
  AutonomicReplicationService::Options options;
  options.policy.lower_after = 50;
  AutonomicReplicationService service(
      [&](aft::vote::Ballot in, std::size_t replica) -> aft::vote::Ballot {
        if (disturb && rng.bernoulli(0.2)) {
          return in + 100 + static_cast<aft::vote::Ballot>(replica);
        }
        return in;
      },
      options);

  // The dimensioning assumption starts at 3 and holds.
  EXPECT_EQ(service.dimensioning_assumption().assumed(), 3);

  disturb = true;
  for (int i = 0; i < 200; ++i) service.call(i);
  EXPECT_GT(service.replicas(), 3u);
  // The assumption was re-bound in lockstep with every resize.
  EXPECT_EQ(service.dimensioning_assumption().assumed(),
            static_cast<std::int64_t>(service.replicas()));
  EXPECT_GT(service.disturbance_level(), 0.01);

  disturb = false;
  for (int i = 0; i < 1000; ++i) service.call(i);
  EXPECT_EQ(service.replicas(), 3u);
  EXPECT_EQ(service.dimensioning_assumption().assumed(), 3);
  EXPECT_LT(service.disturbance_level(), 0.01);
}

TEST(ServiceTest, PublishesIntoContext) {
  aft::core::Context ctx;
  AutonomicReplicationService::Options options;
  options.estimator.context_key = "env.disturbance";
  options.assumption_id = "dim.r";
  AutonomicReplicationService service(
      [](aft::vote::Ballot in, std::size_t) { return in; }, options, &ctx);
  service.call(1);
  EXPECT_TRUE(ctx.get<double>("env.disturbance").has_value());
  EXPECT_EQ(ctx.get<std::int64_t>("dim.r.observed"), 3);
  // The assumption tracks the context the service itself feeds:
  // self-consistent by construction.
  EXPECT_EQ(service.dimensioning_assumption().assumed(), 3);
}

TEST(ServiceTest, NoMajorityReturnsNulloptAndCounts) {
  // Every replica answers differently: voting can never succeed.
  AutonomicReplicationService service(
      [](aft::vote::Ballot in, std::size_t replica) {
        return in + static_cast<aft::vote::Ballot>(replica);
      },
      AutonomicReplicationService::Options{});
  EXPECT_FALSE(service.call(0).has_value());
  EXPECT_EQ(service.failures(), 1u);
  EXPECT_EQ(service.last_report().distance, 0);
  EXPECT_GT(service.disturbance_level(), 0.0);
}

// --- ScrubberDaemon -----------------------------------------------------------------

TEST(ScrubberTest, ParamValidation) {
  aft::sim::Simulator sim;
  aft::hw::MemoryChip chip(16);
  aft::mem::EccScrubAccess method(chip);
  EXPECT_THROW(aft::mem::ScrubberDaemon(sim, method, 0), std::invalid_argument);
}

TEST(ScrubberTest, PeriodicPasses) {
  aft::sim::Simulator sim;
  aft::hw::MemoryChip chip(16);
  aft::mem::EccScrubAccess method(chip, /*words_per_scrub_step=*/16);
  aft::mem::ScrubberDaemon scrubber(sim, method, 10);
  scrubber.start();
  sim.run_until(100);
  EXPECT_EQ(scrubber.passes(), 10u);
  scrubber.stop();
  sim.run_all();
  EXPECT_EQ(scrubber.passes(), 10u);
}

TEST(ScrubberTest, RepairsLatentFlipsBetweenDemandReads) {
  aft::sim::Simulator sim;
  aft::hw::MemoryChip chip(16);
  aft::mem::EccScrubAccess method(chip, 16);
  aft::mem::ScrubberDaemon scrubber(sim, method, 5);
  scrubber.start();
  for (std::size_t w = 0; w < 16; ++w) method.write(w, w);
  // A latent flip appears at t=7; the pass at t=10 repairs it before the
  // second flip at t=12 can make the word uncorrectable.
  sim.schedule_at(7, [&] { chip.inject_bit_flip(3, 11); });
  sim.schedule_at(12, [&] { chip.inject_bit_flip(3, 40); });
  sim.run_until(20);
  const auto r = method.read(3);
  EXPECT_TRUE(r.ok());
  EXPECT_EQ(r.value, 3u);
}

TEST(ScrubberTest, TooSlowACadenceLosesTheRace) {
  aft::sim::Simulator sim;
  aft::hw::MemoryChip chip(16);
  aft::mem::EccScrubAccess method(chip, 16);
  aft::mem::ScrubberDaemon scrubber(sim, method, 1000);  // patrol far too rare
  scrubber.start();
  for (std::size_t w = 0; w < 16; ++w) method.write(w, w);
  sim.schedule_at(7, [&] { chip.inject_bit_flip(3, 11); });
  sim.schedule_at(12, [&] { chip.inject_bit_flip(3, 40); });
  sim.run_until(20);
  EXPECT_EQ(method.read(3).status, aft::mem::ReadStatus::kUncorrectable);
}

TEST(ScrubberTest, CadenceCanBeRetuned) {
  aft::sim::Simulator sim;
  aft::hw::MemoryChip chip(16);
  aft::mem::EccScrubAccess method(chip, 16);
  aft::mem::ScrubberDaemon scrubber(sim, method, 100);
  scrubber.start();
  sim.run_until(100);  // pass at t=100; the next is already booked for t=200
  scrubber.set_period(10);
  sim.run_until(200);  // pass at t=200 runs, and reschedules with the new period
  EXPECT_EQ(scrubber.passes(), 2u);
  sim.run_until(250);  // passes at 210..250
  EXPECT_EQ(scrubber.passes(), 7u);
}

}  // namespace

// --- Unit retirement (replace-on-discrimination) -----------------------------------

namespace {

TEST(ServiceRetirementTest, WedgedUnitIsReplacedAndServiceHeals) {
  // Unit 1 (initially serving slot 1) is permanently wedged; every other
  // unit — including spares engaged later — computes correctly.
  AutonomicReplicationService::Options options;
  options.retire_faulty_units = true;
  AutonomicReplicationService service(
      [](aft::vote::Ballot in, std::size_t unit) -> aft::vote::Ballot {
        return unit == 1 ? -999 : in + 1;
      },
      options);
  ASSERT_EQ(service.unit_of_slot(1), 1u);

  int dissent_rounds = 0;
  for (int i = 0; i < 50; ++i) {
    const auto result = service.call(i);
    ASSERT_TRUE(result.has_value());  // 2-of-3 majority holds throughout
    if (service.last_report().dissent > 0) ++dissent_rounds;
  }
  EXPECT_EQ(service.units_replaced(), 1u);
  // A fresh spare took over slot 1.  (Its id is > 2: the switchboard's
  // redundancy raises during the dissent window allocate units 3.. first,
  // then the retirement engages the next free one.)
  EXPECT_NE(service.unit_of_slot(1), 1u);
  EXPECT_GE(service.unit_of_slot(1), 3u);
  // After the replacement the farm reaches consensus again: dissent stops.
  EXPECT_LT(dissent_rounds, 10);
  const auto after = service.call(100);
  ASSERT_TRUE(after.has_value());
  EXPECT_EQ(service.last_report().dissent, 0u);
}

TEST(ServiceRetirementTest, TransientGlitchesDoNotBurnSpares) {
  aft::util::Xoshiro256 rng(11);
  AutonomicReplicationService::Options options;
  options.retire_faulty_units = true;
  AutonomicReplicationService service(
      [&](aft::vote::Ballot in, std::size_t) -> aft::vote::Ballot {
        return rng.bernoulli(0.01) ? in + 77 : in;  // sparse upsets, any unit
      },
      options);
  for (int i = 0; i < 500; ++i) service.call(i);
  EXPECT_EQ(service.units_replaced(), 0u)
      << "sparse transients must stay below the oracle's threshold";
}

TEST(ServiceRetirementTest, DisabledByDefault) {
  AutonomicReplicationService service(
      [](aft::vote::Ballot in, std::size_t unit) -> aft::vote::Ballot {
        return unit == 0 ? -1 : in;
      },
      AutonomicReplicationService::Options{});
  for (int i = 1; i < 50; ++i) service.call(i);
  EXPECT_EQ(service.units_replaced(), 0u);
  EXPECT_EQ(service.unit_of_slot(0), 0u);  // still the broken unit: masked only
}

}  // namespace
