// Second property-test wave: randomized system-level invariants for the
// voting farm, the switchboard, the middleware under random fault loads,
// ECC multi-bit behaviour, and manifest parse stability.
#include <gtest/gtest.h>

#include <memory>

#include "arch/middleware.hpp"
#include "autonomic/switchboard.hpp"
#include "hw/memory_chip.hpp"
#include "manifest/manifest.hpp"
#include "mem/ecc.hpp"
#include "util/rng.hpp"
#include "vote/voting_farm.hpp"

namespace {

// --- VotingFarm success iff corruption below majority --------------------------------

struct FarmCase {
  std::size_t replicas;
  std::size_t corrupted;
};

class FarmMajorityTest : public ::testing::TestWithParam<FarmCase> {};

TEST_P(FarmMajorityTest, SuccessExactlyWhenCorrectReplicasHoldMajority) {
  const auto [n, corrupted] = GetParam();
  aft::vote::VotingFarm farm(n, [corrupted = corrupted](aft::vote::Ballot in,
                                                        std::size_t replica) {
    // Distinct wrong values: the hardest case for exact voting.
    return replica < corrupted ? in + 1000 + static_cast<aft::vote::Ballot>(replica)
                               : in;
  });
  const auto report = farm.invoke(7);
  const bool correct_majority = (n - corrupted) * 2 > n;
  EXPECT_EQ(report.success, correct_majority) << "n=" << n << " c=" << corrupted;
  if (report.success) {
    EXPECT_EQ(report.value, 7);
    EXPECT_EQ(report.dissent, corrupted);
    EXPECT_EQ(report.distance, aft::vote::dtof(n, corrupted));
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, FarmMajorityTest,
    ::testing::Values(FarmCase{3, 0}, FarmCase{3, 1}, FarmCase{3, 2},
                      FarmCase{5, 2}, FarmCase{5, 3}, FarmCase{7, 3},
                      FarmCase{7, 4}, FarmCase{9, 4}, FarmCase{9, 5}),
    [](const ::testing::TestParamInfo<FarmCase>& param_info) {
      return "n" + std::to_string(param_info.param.replicas) + "_c" +
             std::to_string(param_info.param.corrupted);
    });

// --- Switchboard bounds invariant ------------------------------------------------------

TEST(SwitchboardPropertyTest, ReplicasAlwaysWithinBoundsAndOdd) {
  aft::util::Xoshiro256 rng(77);
  for (int trial = 0; trial < 10; ++trial) {
    aft::vote::VotingFarm farm(3, [](aft::vote::Ballot in, std::size_t) { return in; });
    aft::autonomic::ReflectiveSwitchboard::Policy policy;
    policy.lower_after = 5 + rng.uniform_int(0, 50);
    aft::autonomic::ReflectiveSwitchboard board(
        farm, policy, static_cast<std::uint64_t>(trial));
    for (int round = 0; round < 2000; ++round) {
      const std::size_t n = farm.replicas();
      // Random dissent between 0 and n (no-majority when > n/2).
      const auto dissent = static_cast<std::size_t>(rng.uniform_int(0, n));
      aft::vote::RoundReport report;
      report.n = n;
      report.dissent = dissent;
      report.success = dissent * 2 < n;
      report.distance = report.success ? aft::vote::dtof(n, dissent) : 0;
      board.observe(report);
      ASSERT_GE(farm.replicas(), policy.min_replicas);
      ASSERT_LE(farm.replicas(), policy.max_replicas);
      ASSERT_EQ(farm.replicas() % 2, 1u);
    }
  }
}

// --- Middleware under random fault loads ------------------------------------------------

TEST(MiddlewarePropertyTest, FailStopFailsIffAnyFailureDegradedNeverFails) {
  aft::util::Xoshiro256 rng(2025);
  for (int trial = 0; trial < 100; ++trial) {
    aft::arch::Middleware mw;
    const int n = 3 + static_cast<int>(rng.uniform_int(0, 4));
    aft::arch::DagSnapshot snapshot;
    snapshot.name = "chain";
    std::vector<std::shared_ptr<aft::arch::ScriptedComponent>> components;
    for (int i = 0; i < n; ++i) {
      const std::string id = "c" + std::to_string(i);
      auto c = std::make_shared<aft::arch::ScriptedComponent>(
          id, [](std::int64_t v) { return v + 1; });
      mw.register_component(c);
      components.push_back(c);
      snapshot.nodes.push_back(id);
      if (i > 0) snapshot.edges.emplace_back("c" + std::to_string(i - 1), id);
    }
    mw.deploy(snapshot);

    int failing = 0;
    for (auto& c : components) {
      if (rng.bernoulli(0.3)) {
        c->fail_next(2);  // enough for both runs below
        ++failing;
      }
    }
    const auto fail_stop = mw.run(0, aft::arch::Middleware::FailurePolicy::kFailStop);
    EXPECT_EQ(fail_stop.ok, failing == 0);

    const auto degraded =
        mw.run(0, aft::arch::Middleware::FailurePolicy::kDegradedValue);
    EXPECT_TRUE(degraded.ok);
    EXPECT_EQ(degraded.degraded, failing > 0);
    // Value = input + one increment per non-failing component.
    // (fail_stop consumed one scripted failure per failing component; the
    // degraded run consumes the second.)
    EXPECT_EQ(degraded.value, n - failing);
    EXPECT_EQ(degraded.trace.size(), static_cast<std::size_t>(n));
  }
}

// --- ECC multi-bit behaviour --------------------------------------------------------------

TEST(EccPropertyTest, OddWeightErrorsNeverDecodeClean) {
  aft::util::Xoshiro256 rng(31);
  for (int trial = 0; trial < 3000; ++trial) {
    const std::uint64_t data = rng.next();
    aft::hw::Word72 w = aft::mem::ecc_encode(data);
    const auto weight = 1 + 2 * rng.uniform_int(0, 2);  // 1, 3 or 5 flips
    std::vector<unsigned> bits;
    while (bits.size() < weight) {
      const auto b = static_cast<unsigned>(rng.uniform_int(0, 71));
      if (std::find(bits.begin(), bits.end(), b) == bits.end()) bits.push_back(b);
    }
    for (const unsigned b : bits) aft::hw::flip_bit(w, b);
    const auto dec = aft::mem::ecc_decode(w);
    // Odd-weight errors always trip the overall parity: never kClean.
    ASSERT_NE(dec.status, aft::mem::EccStatus::kClean);
    if (weight == 1) {
      ASSERT_EQ(dec.status, aft::mem::EccStatus::kCorrectedSingle);
      ASSERT_EQ(dec.data, data);
    }
  }
}

TEST(EccPropertyTest, EvenWeightErrorsAreNeverMiscorrected) {
  // The SEC-DED guarantee, stated precisely: weight-2 errors are always
  // kDetectedDouble; weight-4 errors are never *miscorrected* (even parity
  // rules out the corrected-single verdict) — but four flips whose
  // positions XOR to zero legitimately alias to another valid codeword
  // (kClean with wrong data), the code's documented limit.  That residual
  // is exactly why f4-grade environments need M4's voting on top of ECC.
  aft::util::Xoshiro256 rng(33);
  std::uint64_t weight4_aliases = 0;
  for (int trial = 0; trial < 3000; ++trial) {
    const std::uint64_t data = rng.next();
    aft::hw::Word72 w = aft::mem::ecc_encode(data);
    const auto weight = 2 + 2 * rng.uniform_int(0, 1);  // 2 or 4 flips
    std::vector<unsigned> bits;
    while (bits.size() < weight) {
      const auto b = static_cast<unsigned>(rng.uniform_int(0, 71));
      if (std::find(bits.begin(), bits.end(), b) == bits.end()) bits.push_back(b);
    }
    for (const unsigned b : bits) aft::hw::flip_bit(w, b);
    const auto dec = aft::mem::ecc_decode(w);
    ASSERT_NE(dec.status, aft::mem::EccStatus::kCorrectedSingle);
    if (weight == 2) {
      ASSERT_EQ(dec.status, aft::mem::EccStatus::kDetectedDouble);
    } else if (dec.status == aft::mem::EccStatus::kClean) {
      ++weight4_aliases;
    }
  }
  // Aliasing exists but must be rare (syndrome space is 72+ wide).
  EXPECT_LT(weight4_aliases, 100u);
}

// --- Manifest parse stability ----------------------------------------------------------------

TEST(ManifestPropertyTest, ParseSerializeIsIdempotentOnRandomManifests) {
  aft::util::Xoshiro256 rng(41);
  for (int trial = 0; trial < 30; ++trial) {
    aft::manifest::Manifest m;
    m.name = "m" + std::to_string(trial);
    m.version = std::to_string(rng.uniform_int(1, 9));
    const auto n_assumptions = rng.uniform_int(0, 5);
    for (std::uint64_t a = 0; a < n_assumptions; ++a) {
      aft::manifest::AssumptionRecord record;
      record.id = "a" + std::to_string(a);
      record.statement = "statement " + std::to_string(rng.next() % 100);
      record.subject = static_cast<aft::core::Subject>(rng.uniform_int(0, 3));
      record.origin = "origin";
      record.rationale = "rationale";
      record.stated_at = static_cast<aft::core::BindingTime>(rng.uniform_int(0, 3));
      record.expectation.key = "k" + std::to_string(a);
      record.expectation.op = static_cast<aft::contract::Op>(rng.uniform_int(0, 5));
      switch (rng.uniform_int(0, 3)) {
        case 0: record.expectation.bound = rng.bernoulli(0.5); break;
        case 1:
          record.expectation.bound = static_cast<std::int64_t>(rng.uniform_int(0, 1000));
          break;
        case 2: record.expectation.bound = rng.uniform01() * 100; break;
        default: record.expectation.bound = std::string("value"); break;
      }
      m.assumptions.push_back(std::move(record));
    }
    const std::string once = m.serialize();
    const std::string twice = aft::manifest::Manifest::parse(once).serialize();
    ASSERT_EQ(once, twice) << "trial " << trial;
  }
}

}  // namespace
