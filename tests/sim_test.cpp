// Unit tests for the discrete-event simulation kernel and the stochastic
// disturbance processes.
#include <gtest/gtest.h>

#include <array>
#include <memory>
#include <queue>
#include <utility>
#include <vector>

#include "sim/processes.hpp"
#include "sim/simulator.hpp"
#include "util/rng.hpp"

namespace {

using aft::sim::GilbertElliott;
using aft::sim::PoissonProcess;
using aft::sim::SimTime;
using aft::sim::Simulator;

TEST(SimulatorTest, StartsAtZeroAndIdle) {
  Simulator sim;
  EXPECT_EQ(sim.now(), 0u);
  EXPECT_TRUE(sim.idle());
  EXPECT_FALSE(sim.step());
}

TEST(SimulatorTest, EventsFireInTimeOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.schedule_at(30, [&] { order.push_back(3); });
  sim.schedule_at(10, [&] { order.push_back(1); });
  sim.schedule_at(20, [&] { order.push_back(2); });
  EXPECT_EQ(sim.run_all(), 3u);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.now(), 30u);
}

TEST(SimulatorTest, SameTickFifoOrder) {
  Simulator sim;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    sim.schedule_at(7, [&order, i] { order.push_back(i); });
  }
  sim.run_all();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(SimulatorTest, SameTickFifoAcrossScheduleAtAndIn) {
  // The FIFO tie-break is by scheduling order regardless of which entry
  // point queued the event: schedule_at(7) and schedule_in(7) interleaved
  // at the same tick must fire in call order, or mixed-API code (e.g. a
  // scrubber using schedule_in beside an injector using schedule_at) would
  // reorder depending on internals.
  Simulator sim;
  std::vector<int> order;
  sim.schedule_at(7, [&] { order.push_back(0); });
  sim.schedule_in(7, [&] { order.push_back(1); });
  sim.schedule_at(7, [&] { order.push_back(2); });
  sim.schedule_in(7, [&] { order.push_back(3); });
  sim.run_all();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3}));
  EXPECT_EQ(sim.executed(), 4u);
}

TEST(SimulatorTest, ExecutedCountsLifetimeEvents) {
  Simulator sim;
  sim.schedule_at(1, [] {});
  sim.schedule_at(2, [] {});
  sim.run_all();
  sim.schedule_at(3, [] {});
  sim.run_all();
  EXPECT_EQ(sim.executed(), 3u);
}

TEST(SimulatorTest, SchedulingInThePastThrows) {
  Simulator sim;
  sim.schedule_at(10, [] {});
  sim.run_all();
  EXPECT_THROW(sim.schedule_at(5, [] {}), std::invalid_argument);
}

TEST(SimulatorTest, ScheduleInIsRelative) {
  Simulator sim;
  SimTime fired_at = 0;
  sim.schedule_at(100, [&] {
    sim.schedule_in(25, [&] { fired_at = sim.now(); });
  });
  sim.run_all();
  EXPECT_EQ(fired_at, 125u);
}

TEST(SimulatorTest, RunUntilStopsAtBoundaryInclusive) {
  Simulator sim;
  int fired = 0;
  sim.schedule_at(10, [&] { ++fired; });
  sim.schedule_at(20, [&] { ++fired; });
  sim.schedule_at(21, [&] { ++fired; });
  EXPECT_EQ(sim.run_until(20), 2u);
  EXPECT_EQ(fired, 2);
  EXPECT_EQ(sim.now(), 20u);
  EXPECT_EQ(sim.pending(), 1u);
}

TEST(SimulatorTest, RunUntilAdvancesClockWhenIdle) {
  Simulator sim;
  sim.run_until(500);
  EXPECT_EQ(sim.now(), 500u);
}

TEST(SimulatorTest, EventsCanScheduleEvents) {
  Simulator sim;
  int chain = 0;
  std::function<void()> next = [&] {
    if (++chain < 10) sim.schedule_in(1, next);
  };
  sim.schedule_at(0, next);
  sim.run_all();
  EXPECT_EQ(chain, 10);
  EXPECT_EQ(sim.now(), 9u);
}

TEST(SimulatorTest, AdvanceToCannotGoBackwards) {
  Simulator sim;
  sim.advance_to(50);
  EXPECT_THROW(sim.advance_to(10), std::invalid_argument);
}

TEST(SimulatorTest, AdvanceToCannotSkipPendingEvents) {
  Simulator sim;
  sim.schedule_at(30, [] {});
  EXPECT_THROW(sim.advance_to(40), std::logic_error);
}

TEST(SimulatorTest, ActionsMayHoldMoveOnlyCaptures) {
  // The InlineFn-based Action is move-only, so non-copyable captures are
  // legal — something the std::function kernel rejected at compile time.
  Simulator sim;
  int out = 0;
  auto payload = std::make_unique<int>(41);
  sim.schedule_at(1, [&out, p = std::move(payload)] { out = *p + 1; });
  sim.run_all();
  EXPECT_EQ(out, 42);
}

TEST(SimulatorTest, InTreeContinuationShapesFitInline) {
  // The allocation-free contract: every continuation shape the library's
  // scheduling clients use must fit the kernel's inline callable storage.
  struct Host {
    void fire(std::uint64_t) {}
  };
  Host* h = nullptr;
  std::uint64_t epoch = 3;
  std::string channel = "replica-1";
  auto daemon_chain = [h, epoch] { h->fire(epoch); };
  auto heartbeat_chain = [h, channel = channel, epoch] {
    (void)channel;
    h->fire(epoch);
  };
  static_assert(Simulator::fits_inline<decltype(daemon_chain)>);
  static_assert(Simulator::fits_inline<decltype(heartbeat_chain)>);
  // And a capture past the 64-byte budget is *not* inline (it still works,
  // via the heap fallback — see inline_fn_test).
  std::array<char, 80> big{};
  auto oversized = [big] { (void)big; };
  static_assert(!Simulator::fits_inline<decltype(oversized)>);
  (void)daemon_chain;
  (void)heartbeat_chain;
  (void)oversized;
}

// --- Differential test: the DHeap kernel vs a priority_queue reference model

namespace differential {

// Reference semantics: the pre-DHeap kernel — std::priority_queue with the
// FIFO (when, seq) tie-break.  Both drivers expose the same surface so one
// scenario can drive them identically; the dispatch logs must match event
// for event.
struct RefKernel {
  struct Entry {
    SimTime when;
    std::uint64_t seq;
    int id;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const noexcept {
      if (a.when != b.when) return a.when > b.when;
      return a.seq > b.seq;
    }
  };

  std::priority_queue<Entry, std::vector<Entry>, Later> queue;
  SimTime now = 0;
  std::uint64_t next_seq = 0;

  void schedule_at(SimTime when, int id) { queue.push(Entry{when, next_seq++, id}); }
  [[nodiscard]] bool idle() const { return queue.empty(); }
};

// The re-entrant rule both sides apply on dispatch: low ids fan out into
// children scheduled 0..4 ticks ahead (delay 0 = same-tick re-entrancy).
constexpr int kFanOutBelow = 300;
constexpr int fan_out(int id) { return id < kFanOutBelow ? id % 3 : 0; }
constexpr SimTime child_delay(int id, int k) {
  return static_cast<SimTime>((id + 2 * k) % 5);
}

struct SimDriver {
  Simulator sim;
  std::vector<std::pair<SimTime, int>> log;
  int next_id;

  explicit SimDriver(int first_child_id) : next_id(first_child_id) {}

  void fire(int id) {
    log.emplace_back(sim.now(), id);
    for (int k = 0; k < fan_out(id); ++k) {
      const int child = next_id++;
      sim.schedule_in(child_delay(id, k), [this, child] { fire(child); });
    }
  }
  void schedule_at(SimTime when, int id) {
    sim.schedule_at(when, [this, id] { fire(id); });
  }
  [[nodiscard]] SimTime now() const { return sim.now(); }
  void run_until(SimTime t) { sim.run_until(t); }
  void run_all() { sim.run_all(); }
  void advance_to(SimTime t) { sim.advance_to(t); }
  bool step() { return sim.step(); }
};

struct RefDriver {
  RefKernel kernel;
  std::vector<std::pair<SimTime, int>> log;
  int next_id;

  explicit RefDriver(int first_child_id) : next_id(first_child_id) {}

  void fire(int id) {
    log.emplace_back(kernel.now, id);
    for (int k = 0; k < fan_out(id); ++k) {
      kernel.schedule_at(kernel.now + child_delay(id, k), next_id++);
    }
  }
  void schedule_at(SimTime when, int id) { kernel.schedule_at(when, id); }
  [[nodiscard]] SimTime now() const { return kernel.now; }
  bool step() {
    if (kernel.idle()) return false;
    const RefKernel::Entry e = kernel.queue.top();
    kernel.queue.pop();
    kernel.now = e.when;
    fire(e.id);
    return true;
  }
  void run_until(SimTime t) {
    while (!kernel.idle() && kernel.queue.top().when <= t) step();
    if (kernel.now < t) kernel.now = t;
  }
  void run_all() {
    while (step()) {
    }
  }
  void advance_to(SimTime t) { kernel.now = t; }
};

// One adversarial scenario: same-tick bursts, re-entrant fan-out, and
// interleaved run_until / step / advance_to driving.
template <typename Driver>
void drive(Driver& d) {
  aft::util::Xoshiro256 rng(2026);
  // Wave 1: 200 events crammed into 40 ticks (~5 per tick burst).
  for (int id = 0; id < 200; ++id) {
    d.schedule_at(rng.uniform_int(0, 40), id);
  }
  // Drain in stuttering run_until windows, then to quiescence.
  for (SimTime t = 0; t <= 45; t += 3) d.run_until(t);
  d.run_all();
  // Move the clock through dead air, then a second wave drained one step at
  // a time (exercises step()'s move-out path directly).
  d.advance_to(d.now() + 7);
  const SimTime base = d.now();
  for (int id = 1000; id < 1100; ++id) {
    d.schedule_at(base + rng.uniform_int(0, 15), id);
  }
  while (d.step()) {
  }
}

TEST(SimulatorDifferentialTest, AdversarialScheduleMatchesPriorityQueueModel) {
  SimDriver real(/*first_child_id=*/5000);
  RefDriver ref(/*first_child_id=*/5000);
  drive(real);
  drive(ref);
  ASSERT_EQ(real.log.size(), ref.log.size());
  EXPECT_EQ(real.log, ref.log);
  EXPECT_EQ(real.next_id, ref.next_id);  // same re-entrant fan-out happened
  EXPECT_EQ(real.now(), ref.now());
}

}  // namespace differential

// --- PoissonProcess ---------------------------------------------------------

TEST(PoissonProcessTest, ZeroRateNeverFires) {
  PoissonProcess p(0.0, 1);
  for (int i = 0; i < 100; ++i) EXPECT_FALSE(p.fires_this_tick());
  EXPECT_GT(p.next_gap(), std::uint64_t{1} << 62);
}

TEST(PoissonProcessTest, MeanGapApproximatesInverseRate) {
  PoissonProcess p(0.01, 77);
  double total = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) total += static_cast<double>(p.next_gap());
  EXPECT_NEAR(total / n, 100.0, 5.0);
}

TEST(PoissonProcessTest, GapIsAtLeastOne) {
  PoissonProcess p(100.0, 3);  // very high rate
  for (int i = 0; i < 1000; ++i) EXPECT_GE(p.next_gap(), 1u);
}

TEST(PoissonProcessTest, PerTickFrequencyMatchesRate) {
  PoissonProcess p(0.05, 123);
  int fires = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    if (p.fires_this_tick()) ++fires;
  }
  // P(fire) = 1 - e^-0.05 ~ 0.04877
  EXPECT_NEAR(static_cast<double>(fires) / n, 0.0488, 0.005);
}

// --- GilbertElliott ----------------------------------------------------------

TEST(GilbertElliottTest, StartsGood) {
  GilbertElliott ge(GilbertElliott::Params{}, 5);
  EXPECT_FALSE(ge.in_bad_state());
}

TEST(GilbertElliottTest, GoodStateRespectsLowRate) {
  GilbertElliott::Params params;
  params.p_good = 0.0;
  params.g2b = 0.0;  // never leaves Good
  GilbertElliott ge(params, 7);
  for (int i = 0; i < 10000; ++i) EXPECT_FALSE(ge.tick());
}

TEST(GilbertElliottTest, BadStateBursts) {
  GilbertElliott::Params params;
  params.p_good = 0.0;
  params.p_bad = 0.9;
  params.b2g = 0.0;  // stays bad forever once forced
  GilbertElliott ge(params, 9);
  ge.force_state(true);
  int events = 0;
  const int n = 10000;
  for (int i = 0; i < n; ++i) {
    if (ge.tick()) ++events;
  }
  EXPECT_NEAR(static_cast<double>(events) / n, 0.9, 0.02);
}

TEST(GilbertElliottTest, TransitionsBetweenStates) {
  GilbertElliott::Params params;
  params.g2b = 0.01;
  params.b2g = 0.1;
  GilbertElliott ge(params, 11);
  int bad_ticks = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    ge.tick();
    if (ge.in_bad_state()) ++bad_ticks;
  }
  // Stationary P(bad) = g2b / (g2b + b2g) = 1/11 ~ 0.0909
  EXPECT_NEAR(static_cast<double>(bad_ticks) / n, 0.0909, 0.02);
}

}  // namespace
