// Unit tests for the discrete-event simulation kernel and the stochastic
// disturbance processes.
#include <gtest/gtest.h>

#include <vector>

#include "sim/processes.hpp"
#include "sim/simulator.hpp"

namespace {

using aft::sim::GilbertElliott;
using aft::sim::PoissonProcess;
using aft::sim::SimTime;
using aft::sim::Simulator;

TEST(SimulatorTest, StartsAtZeroAndIdle) {
  Simulator sim;
  EXPECT_EQ(sim.now(), 0u);
  EXPECT_TRUE(sim.idle());
  EXPECT_FALSE(sim.step());
}

TEST(SimulatorTest, EventsFireInTimeOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.schedule_at(30, [&] { order.push_back(3); });
  sim.schedule_at(10, [&] { order.push_back(1); });
  sim.schedule_at(20, [&] { order.push_back(2); });
  EXPECT_EQ(sim.run_all(), 3u);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.now(), 30u);
}

TEST(SimulatorTest, SameTickFifoOrder) {
  Simulator sim;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    sim.schedule_at(7, [&order, i] { order.push_back(i); });
  }
  sim.run_all();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(SimulatorTest, SameTickFifoAcrossScheduleAtAndIn) {
  // The FIFO tie-break is by scheduling order regardless of which entry
  // point queued the event: schedule_at(7) and schedule_in(7) interleaved
  // at the same tick must fire in call order, or mixed-API code (e.g. a
  // scrubber using schedule_in beside an injector using schedule_at) would
  // reorder depending on internals.
  Simulator sim;
  std::vector<int> order;
  sim.schedule_at(7, [&] { order.push_back(0); });
  sim.schedule_in(7, [&] { order.push_back(1); });
  sim.schedule_at(7, [&] { order.push_back(2); });
  sim.schedule_in(7, [&] { order.push_back(3); });
  sim.run_all();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3}));
  EXPECT_EQ(sim.executed(), 4u);
}

TEST(SimulatorTest, ExecutedCountsLifetimeEvents) {
  Simulator sim;
  sim.schedule_at(1, [] {});
  sim.schedule_at(2, [] {});
  sim.run_all();
  sim.schedule_at(3, [] {});
  sim.run_all();
  EXPECT_EQ(sim.executed(), 3u);
}

TEST(SimulatorTest, SchedulingInThePastThrows) {
  Simulator sim;
  sim.schedule_at(10, [] {});
  sim.run_all();
  EXPECT_THROW(sim.schedule_at(5, [] {}), std::invalid_argument);
}

TEST(SimulatorTest, ScheduleInIsRelative) {
  Simulator sim;
  SimTime fired_at = 0;
  sim.schedule_at(100, [&] {
    sim.schedule_in(25, [&] { fired_at = sim.now(); });
  });
  sim.run_all();
  EXPECT_EQ(fired_at, 125u);
}

TEST(SimulatorTest, RunUntilStopsAtBoundaryInclusive) {
  Simulator sim;
  int fired = 0;
  sim.schedule_at(10, [&] { ++fired; });
  sim.schedule_at(20, [&] { ++fired; });
  sim.schedule_at(21, [&] { ++fired; });
  EXPECT_EQ(sim.run_until(20), 2u);
  EXPECT_EQ(fired, 2);
  EXPECT_EQ(sim.now(), 20u);
  EXPECT_EQ(sim.pending(), 1u);
}

TEST(SimulatorTest, RunUntilAdvancesClockWhenIdle) {
  Simulator sim;
  sim.run_until(500);
  EXPECT_EQ(sim.now(), 500u);
}

TEST(SimulatorTest, EventsCanScheduleEvents) {
  Simulator sim;
  int chain = 0;
  std::function<void()> next = [&] {
    if (++chain < 10) sim.schedule_in(1, next);
  };
  sim.schedule_at(0, next);
  sim.run_all();
  EXPECT_EQ(chain, 10);
  EXPECT_EQ(sim.now(), 9u);
}

TEST(SimulatorTest, AdvanceToCannotGoBackwards) {
  Simulator sim;
  sim.advance_to(50);
  EXPECT_THROW(sim.advance_to(10), std::invalid_argument);
}

TEST(SimulatorTest, AdvanceToCannotSkipPendingEvents) {
  Simulator sim;
  sim.schedule_at(30, [] {});
  EXPECT_THROW(sim.advance_to(40), std::logic_error);
}

// --- PoissonProcess ---------------------------------------------------------

TEST(PoissonProcessTest, ZeroRateNeverFires) {
  PoissonProcess p(0.0, 1);
  for (int i = 0; i < 100; ++i) EXPECT_FALSE(p.fires_this_tick());
  EXPECT_GT(p.next_gap(), std::uint64_t{1} << 62);
}

TEST(PoissonProcessTest, MeanGapApproximatesInverseRate) {
  PoissonProcess p(0.01, 77);
  double total = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) total += static_cast<double>(p.next_gap());
  EXPECT_NEAR(total / n, 100.0, 5.0);
}

TEST(PoissonProcessTest, GapIsAtLeastOne) {
  PoissonProcess p(100.0, 3);  // very high rate
  for (int i = 0; i < 1000; ++i) EXPECT_GE(p.next_gap(), 1u);
}

TEST(PoissonProcessTest, PerTickFrequencyMatchesRate) {
  PoissonProcess p(0.05, 123);
  int fires = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    if (p.fires_this_tick()) ++fires;
  }
  // P(fire) = 1 - e^-0.05 ~ 0.04877
  EXPECT_NEAR(static_cast<double>(fires) / n, 0.0488, 0.005);
}

// --- GilbertElliott ----------------------------------------------------------

TEST(GilbertElliottTest, StartsGood) {
  GilbertElliott ge(GilbertElliott::Params{}, 5);
  EXPECT_FALSE(ge.in_bad_state());
}

TEST(GilbertElliottTest, GoodStateRespectsLowRate) {
  GilbertElliott::Params params;
  params.p_good = 0.0;
  params.g2b = 0.0;  // never leaves Good
  GilbertElliott ge(params, 7);
  for (int i = 0; i < 10000; ++i) EXPECT_FALSE(ge.tick());
}

TEST(GilbertElliottTest, BadStateBursts) {
  GilbertElliott::Params params;
  params.p_good = 0.0;
  params.p_bad = 0.9;
  params.b2g = 0.0;  // stays bad forever once forced
  GilbertElliott ge(params, 9);
  ge.force_state(true);
  int events = 0;
  const int n = 10000;
  for (int i = 0; i < n; ++i) {
    if (ge.tick()) ++events;
  }
  EXPECT_NEAR(static_cast<double>(events) / n, 0.9, 0.02);
}

TEST(GilbertElliottTest, TransitionsBetweenStates) {
  GilbertElliott::Params params;
  params.g2b = 0.01;
  params.b2g = 0.1;
  GilbertElliott ge(params, 11);
  int bad_ticks = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    ge.tick();
    if (ge.in_bad_state()) ++bad_ticks;
  }
  // Stationary P(bad) = g2b / (g2b + b2g) = 1/11 ~ 0.0909
  EXPECT_NEAR(static_cast<double>(bad_ticks) / n, 0.0909, 0.02);
}

}  // namespace
