// Cross-module integration tests: the three Sect. 3 strategies running
// end-to-end on their substrates, plus assumption-registry-driven
// verification of a full deployment.
#include <gtest/gtest.h>

#include <memory>

#include "autonomic/experiment.hpp"
#include "core/context.hpp"
#include "core/registry.hpp"
#include "detect/watchdog.hpp"
#include "ftpat/pattern_switcher.hpp"
#include "ftpat/reconfiguration.hpp"
#include "ftpat/redoing.hpp"
#include "hw/fault_injector.hpp"
#include "hw/machine.hpp"
#include "mem/method_raw.hpp"
#include "mem/selector.hpp"
#include "sim/simulator.hpp"

namespace {

// --- Strategy 1 (Sect. 3.1): compile-time memory-method selection ------------------

TEST(Strategy1Integration, SelectedMethodSurvivesTheCampaignRawDoesNot) {
  // Deploy on the satellite OBC, whose lot is known SEL-prone (f3).  The
  // selector must pick M3; under an f3-grade injection campaign M3 keeps
  // every word intact while M0 (the hidden-assumption baseline) corrupts.
  aft::hw::Machine obc = aft::hw::machines::satellite_obc(128);
  aft::mem::MethodSelector selector;
  auto selection = selector.select(obc);
  ASSERT_TRUE(selection.report.selected());
  ASSERT_EQ(selection.report.chosen, "M3-sel-mirror");
  auto& method = *selection.method;

  // M0 baseline over an identical spare bank pair (bank 2).
  aft::mem::RawAccess raw(*obc.bank(2).chip);

  const std::size_t n = 64;
  for (std::size_t w = 0; w < n; ++w) {
    method.write(w, w * 13);
    raw.write(w, w * 13);
  }

  // f3-grade campaign on every involved chip.  The SEL rate is set so the
  // campaign sees multiple latch-ups while keeping the probability of two
  // chips latching inside one scrub-coverage window negligible (a duplex
  // scheme cannot survive that; the paper's answer to f4-grade double
  // losses is M4).
  aft::hw::FaultProfile profile = aft::hw::profiles::sdram_sel();
  profile.seu_rate = 2e-3;
  profile.sel_rate = 2e-4;
  aft::hw::FaultInjector inj0(*obc.bank(0).chip, profile, 1);
  aft::hw::FaultInjector inj1(*obc.bank(1).chip, profile, 2);
  aft::hw::FaultInjector inj2(*obc.bank(2).chip, profile, 3);

  std::uint64_t m3_errors = 0, raw_errors = 0;
  for (int step = 0; step < 30000; ++step) {
    inj0.tick();
    inj1.tick();
    inj2.tick();
    if (step % 4 == 0) method.scrub_step();
    const std::size_t addr = static_cast<std::size_t>(step) % n;
    const auto r = method.read(addr);
    if (!r.ok() || r.value != addr * 13) ++m3_errors;
    const auto rr = raw.read(addr);
    if (rr.status != aft::mem::ReadStatus::kOk || rr.value != addr * 13) {
      ++raw_errors;
    }
  }
  EXPECT_EQ(m3_errors, 0u) << "the selected method must mask the f3 campaign";
  EXPECT_GT(raw_errors, 0u) << "the M0 clash must be observable";
  EXPECT_GT(inj0.log().sel + inj1.log().sel, 0u)
      << "the campaign must actually have latch-ups for this test to mean anything";
}

// --- Strategy 2 (Sect. 3.2): watchdog -> alpha-count -> D1/D2 on the simulator -------

TEST(Strategy2Integration, WatchdogDrivenPatternSwitchOnSimulator) {
  // Full Fig. 3 + Fig. 4 assembly on the DES kernel: a watchdog monitors a
  // task; firings feed the switcher's oracle through the middleware's
  // fault topic; when the fault is judged permanent the architecture is
  // reshaped from D1 (redoing) to D2 (reconfiguration).
  aft::sim::Simulator sim;
  aft::arch::Middleware mw;

  auto plus_one = [](std::int64_t v) { return v + 1; };
  auto inner = std::make_shared<aft::arch::ScriptedComponent>("c3i", plus_one);
  auto c31 = std::make_shared<aft::arch::ScriptedComponent>("c31", plus_one);
  auto c32 = std::make_shared<aft::arch::ScriptedComponent>("c32", plus_one);
  mw.register_component(std::make_shared<aft::arch::ScriptedComponent>("c1", plus_one));
  mw.register_component(std::make_shared<aft::ftpat::RedoingComponent>("c3", inner, 2));
  mw.register_component(std::make_shared<aft::ftpat::ReconfigurationComponent>(
      "c3v2", std::vector<std::shared_ptr<aft::arch::Component>>{c31, c32}));

  aft::ftpat::PatternSwitcher switcher(
      mw,
      aft::arch::DagSnapshot{"D1", {"c1", "c3"}, {{"c1", "c3"}}},
      aft::arch::DagSnapshot{"D2", {"c1", "c3v2"}, {{"c1", "c3v2"}}},
      aft::ftpat::PatternSwitcher::Config{.monitored_channel = "c3"});

  aft::detect::Watchdog dog(sim, 10, [&](aft::sim::SimTime) {
    // A watchdog firing doubles as an architecture-run trigger: the run
    // itself reveals whether c3 fails, feeding the oracle.
    switcher.run(0);
  });
  aft::detect::WatchedTask task(sim, dog, 5);
  dog.start();
  task.start();

  // Healthy phase: even if runs were triggered they would succeed.
  sim.run_until(500);
  EXPECT_EQ(switcher.active_snapshot(), "D1");

  // Permanent fault hits both the watched task and c3's physical unit.
  task.inject_permanent_fault();
  inner->fail_always();
  c31->fail_always();
  sim.run_until(500 + 10 * 10);  // enough windows for alpha to cross 3.0

  EXPECT_TRUE(switcher.switched());
  EXPECT_EQ(switcher.active_snapshot(), "D2");
  // After the switch, the reshaped architecture computes again.
  EXPECT_TRUE(switcher.run(7).ok);
}

// --- Strategy 3 (Sect. 3.3): the full autonomic loop ----------------------------------

TEST(Strategy3Integration, AdaptiveBeatsStaticMinAndApproachesStaticMaxSafety) {
  // Compare three dimensioning policies under the same bursty disturbance:
  //   static r=3 (under-dimensioned), static r=9 (over-dimensioned),
  //   adaptive (the paper's).  Expected shape: adaptive has (almost) the
  //   failure record of r=9 at a replica cost close to r=3.
  const auto script = aft::autonomic::fig7_script(200000);

  auto run_static = [&](std::size_t replicas) {
    aft::autonomic::ExperimentConfig config;
    config.initial_replicas = replicas;
    config.policy.min_replicas = replicas;
    config.policy.max_replicas = replicas;
    config.record_series = false;
    return aft::autonomic::run_adaptation_experiment(config, script);
  };
  aft::autonomic::ExperimentConfig adaptive_config;
  adaptive_config.record_series = false;
  adaptive_config.policy.lower_after = 1000;
  const auto adaptive =
      aft::autonomic::run_adaptation_experiment(adaptive_config, script);
  const auto static3 = run_static(3);
  const auto static9 = run_static(9);

  EXPECT_GT(static3.voting_failures, 0u) << "r=3 must clash under the bursts";
  EXPECT_EQ(static9.voting_failures, 0u);
  EXPECT_EQ(adaptive.voting_failures, 0u) << "adaptation must avoid all clashes";

  // Cost: adaptive must sit much closer to 3 than to 9 on average.
  double adaptive_mean = 0;
  for (const auto& [degree, count] : adaptive.redundancy.bins()) {
    adaptive_mean += static_cast<double>(degree) * static_cast<double>(count);
  }
  adaptive_mean /= static_cast<double>(adaptive.redundancy.total());
  EXPECT_LT(adaptive_mean, 4.0);
  EXPECT_GT(adaptive.fraction_at(3), 0.8);
}

// --- Registry-driven deployment audit ---------------------------------------------------

TEST(DeploymentAuditIntegration, RegistryDetectsThePlatformSwapClash) {
  // The Ariane reuse scenario, played on memory semantics: software
  // qualified for the laptop (f1) is redeployed on the satellite (f3).
  // The registered hardware assumption must clash, and the clash must
  // carry the provenance of the original qualification.
  aft::core::AssumptionRegistry registry;
  registry.emplace<std::string>(
      "hw.memory.semantics",
      "Memory exhibits at worst CMOS-like transient failures (f1)",
      aft::core::Subject::kHardware,
      aft::core::Provenance{.origin = "laptop qualification campaign 2004",
                            .rationale = "KB judgment for the Fig. 2 DIMMs",
                            .stated_at = aft::core::BindingTime::kCompile},
      std::string("f1"), "platform.memory.semantics");

  aft::mem::MethodSelector selector;

  // Deployment 1: laptop.  Context fact published by introspection.
  aft::core::Context ctx;
  aft::hw::Machine laptop = aft::hw::machines::laptop(64);
  ctx.set("platform.memory.semantics",
          selector.analyze(laptop).required_label);
  EXPECT_TRUE(registry.verify_all(ctx).empty());

  // Deployment 2: satellite.  Same software, new platform.
  aft::hw::Machine obc = aft::hw::machines::satellite_obc(64);
  ctx.set("platform.memory.semantics", selector.analyze(obc).required_label);
  const auto clashes = registry.verify_all(ctx);
  ASSERT_EQ(clashes.size(), 1u);
  EXPECT_EQ(clashes[0].assumption_id, "hw.memory.semantics");
  EXPECT_EQ(clashes[0].observed, "f3");
  EXPECT_EQ(registry.find("hw.memory.semantics")->provenance().origin,
            "laptop qualification campaign 2004");
}

}  // namespace
