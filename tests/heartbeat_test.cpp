// Tests for the multi-channel HeartbeatMonitor and its integration with
// the per-channel fault discriminator.
#include <gtest/gtest.h>

#include "detect/heartbeat.hpp"
#include "sim/simulator.hpp"

namespace {

using namespace aft::detect;
using aft::sim::SimTime;
using aft::sim::Simulator;

struct Fixture {
  Simulator sim;
  FaultDiscriminator discriminator;
  HeartbeatMonitor monitor{sim, discriminator};
};

/// Schedules a beat for `channel` every `period` ticks until `until`.
void drive_beats(Fixture& f, const std::string& channel, SimTime period,
                 SimTime until) {
  for (SimTime t = period; t <= until; t += period) {
    f.sim.schedule_at(t, [&f, channel] {
      if (f.monitor.watching(channel)) f.monitor.beat(channel);
    });
  }
}

TEST(HeartbeatTest, RegistrationRules) {
  Fixture f;
  EXPECT_THROW(f.monitor.watch("c", 0), std::invalid_argument);
  f.monitor.watch("c", 10);
  EXPECT_TRUE(f.monitor.watching("c"));
  EXPECT_THROW(f.monitor.watch("c", 10), std::invalid_argument);
  EXPECT_THROW(f.monitor.beat("unknown"), std::invalid_argument);
  EXPECT_EQ(f.monitor.channel_count(), 1u);
}

TEST(HeartbeatTest, HealthyChannelsNeverMiss) {
  Fixture f;
  f.monitor.watch("a", 10);
  f.monitor.watch("b", 7);
  drive_beats(f, "a", 5, 500);
  drive_beats(f, "b", 3, 500);
  f.sim.run_until(500);
  EXPECT_EQ(f.monitor.total_misses(), 0u);
  EXPECT_EQ(f.discriminator.judgment("a"), FaultJudgment::kNoEvidence);
  EXPECT_EQ(f.discriminator.judgment("b"), FaultJudgment::kNoEvidence);
}

TEST(HeartbeatTest, SilentChannelIsJudgedPermanent) {
  Fixture f;
  f.monitor.watch("dead", 10);
  f.monitor.watch("alive", 10);
  drive_beats(f, "alive", 5, 200);
  f.sim.run_until(200);
  EXPECT_GE(f.monitor.consecutive_misses("dead"), 19u);
  EXPECT_EQ(f.discriminator.judgment("dead"),
            FaultJudgment::kPermanentOrIntermittent);
  EXPECT_EQ(f.discriminator.judgment("alive"), FaultJudgment::kNoEvidence);
}

TEST(HeartbeatTest, MissHandlerReceivesConsecutiveCount) {
  Fixture f;
  std::vector<std::uint64_t> misses;
  f.monitor.set_miss_handler(
      [&](const std::string& ch, std::uint64_t n) {
        EXPECT_EQ(ch, "c");
        misses.push_back(n);
      });
  f.monitor.watch("c", 10);
  f.sim.run_until(35);  // windows at 10,20,30 all miss
  EXPECT_EQ(misses, (std::vector<std::uint64_t>{1, 2, 3}));
}

TEST(HeartbeatTest, RecoveryResetsConsecutiveMisses) {
  Fixture f;
  f.monitor.watch("c", 10);
  f.sim.run_until(25);  // 2 misses
  EXPECT_EQ(f.monitor.consecutive_misses("c"), 2u);
  f.monitor.beat("c");
  f.sim.run_until(35);  // window at 30 satisfied
  EXPECT_EQ(f.monitor.consecutive_misses("c"), 0u);
  EXPECT_EQ(f.monitor.total_misses(), 2u);  // history retained
}

TEST(HeartbeatTest, UnwatchStopsChecks) {
  Fixture f;
  f.monitor.watch("c", 10);
  f.sim.run_until(25);
  const auto before = f.monitor.total_misses();
  f.monitor.unwatch("c");
  EXPECT_FALSE(f.monitor.watching("c"));
  f.sim.run_until(200);
  EXPECT_EQ(f.monitor.total_misses(), before);
}

TEST(HeartbeatTest, TransientGlitchStaysTransient) {
  Fixture f;
  f.monitor.watch("c", 10);
  // Healthy beats except a 2-window gap.
  for (SimTime t = 5; t <= 400; t += 5) {
    if (t > 100 && t <= 120) continue;  // the glitch
    f.sim.schedule_at(t, [&f] { f.monitor.beat("c"); });
  }
  f.sim.run_until(400);
  EXPECT_GE(f.monitor.total_misses(), 1u);
  EXPECT_EQ(f.discriminator.judgment("c"), FaultJudgment::kTransient);
}

TEST(HeartbeatTest, RewatchRunsASingleCheckChain) {
  // unwatch() leaves the scheduled check pending; a later watch() of the
  // same channel used to run that stale check *and* its own fresh chain,
  // double-counting every subsequent silent window.  The epoch guard kills
  // the stale chain: a fully silent channel over n windows scores exactly
  // n misses, not 2n.
  Fixture f;
  f.monitor.watch("c", 10);
  f.sim.run_until(5);  // check for t=10 is pending
  f.monitor.unwatch("c");
  f.monitor.watch("c", 10);  // re-watch before the stale check fires
  f.sim.run_until(105);      // 10 windows of the fresh chain (t=15..105)
  EXPECT_EQ(f.monitor.total_misses(), 10u);
  EXPECT_EQ(f.monitor.consecutive_misses("c"), 10u);
}

TEST(HeartbeatTest, IndependentDeadlinesPerChannel) {
  Fixture f;
  f.monitor.watch("fast", 5);
  f.monitor.watch("slow", 50);
  // Beat both every 20 ticks: satisfies "slow", starves "fast".
  drive_beats(f, "fast", 20, 300);
  drive_beats(f, "slow", 20, 300);
  f.sim.run_until(300);
  EXPECT_GT(f.monitor.total_misses(), 0u);
  EXPECT_EQ(f.discriminator.judgment("slow"), FaultJudgment::kNoEvidence);
  EXPECT_EQ(f.discriminator.judgment("fast"),
            FaultJudgment::kPermanentOrIntermittent);
}

}  // namespace
