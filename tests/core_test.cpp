// Tests for the assumption framework: typed assumptions, the registry,
// postponed-binding variables, Boulding classification, syndromes, guards,
// and the run-time context monitor.
#include <gtest/gtest.h>

#include "core/assumption.hpp"
#include "core/boulding.hpp"
#include "core/context.hpp"
#include "core/guard.hpp"
#include "core/monitor.hpp"
#include "core/registry.hpp"
#include "core/syndrome.hpp"
#include "core/variable.hpp"
#include "sim/simulator.hpp"

namespace {

using namespace aft::core;

// --- Context -----------------------------------------------------------------

TEST(ContextTest, TypedGetAndRevision) {
  Context ctx;
  EXPECT_EQ(ctx.revision(), 0u);
  ctx.set("hv", std::int64_t{32700});
  ctx.set("env", std::string{"ariane-4"});
  ctx.set("nominal", true);
  EXPECT_EQ(ctx.revision(), 3u);
  EXPECT_EQ(ctx.get<std::int64_t>("hv"), 32700);
  EXPECT_EQ(ctx.get<std::string>("env"), "ariane-4");
  EXPECT_EQ(ctx.get<bool>("nominal"), true);
  EXPECT_FALSE(ctx.get<double>("hv").has_value());  // wrong type
  EXPECT_FALSE(ctx.get<bool>("missing").has_value());
  ctx.erase("nominal");
  EXPECT_EQ(ctx.revision(), 4u);
  ctx.erase("missing");  // no-op, no revision bump
  EXPECT_EQ(ctx.revision(), 4u);
}

// --- Assumption ----------------------------------------------------------------

Provenance test_provenance() {
  return Provenance{.origin = "unit-test", .rationale = "because",
                    .stated_at = BindingTime::kDesign};
}

TEST(AssumptionTest, HoldsViolatedUnverifiedLifecycle) {
  Context ctx;
  // Key-probe constructor: probes context key "velocity", compares with ==.
  Assumption<std::int64_t> a("range", "velocity fits in int16",
                             Subject::kPhysicalEnvironment, test_provenance(),
                             32767, "velocity");
  EXPECT_EQ(a.state(), AssumptionState::kUnverified);
  EXPECT_FALSE(a.verify(ctx).has_value());  // unobservable
  EXPECT_EQ(a.state(), AssumptionState::kUnverified);

  ctx.set("velocity", std::int64_t{32767});
  EXPECT_FALSE(a.verify(ctx).has_value());
  EXPECT_EQ(a.state(), AssumptionState::kHolds);

  ctx.set("velocity", std::int64_t{40000});
  const auto clash = a.verify(ctx);
  ASSERT_TRUE(clash.has_value());
  EXPECT_EQ(clash->assumption_id, "range");
  EXPECT_EQ(clash->observed, "40000");
  EXPECT_EQ(a.state(), AssumptionState::kViolated);
  EXPECT_EQ(a.verifications(), 3u);
}

TEST(AssumptionTest, PredicateForm) {
  // The Ariane f assumption: observed |velocity| must fit a short integer.
  Context ctx;
  Assumption<std::int64_t> f(
      "ariane.hv", "Horizontal velocity can be represented by a short integer",
      Subject::kPhysicalEnvironment, test_provenance(), 32767,
      [](const Context& c) { return c.get<std::int64_t>("hv"); },
      [](const std::int64_t& limit, const std::int64_t& observed) {
        return observed <= limit && observed >= -32768;
      });
  ctx.set("hv", std::int64_t{15000});
  EXPECT_FALSE(f.verify(ctx).has_value());
  ctx.set("hv", std::int64_t{39000});
  EXPECT_TRUE(f.verify(ctx).has_value());
}

TEST(AssumptionTest, RebindRevisesHypothesis) {
  Context ctx;
  ctx.set("replicas", std::int64_t{5});
  Assumption<std::int64_t> a("dim", "degree of redundancy is r",
                             Subject::kExecutionEnvironment, test_provenance(),
                             3, "replicas");
  EXPECT_TRUE(a.verify(ctx).has_value());  // 3 != 5
  a.rebind(5);
  EXPECT_FALSE(a.verify(ctx).has_value());
  EXPECT_EQ(a.assumed(), 5);
}

// --- Registry -----------------------------------------------------------------

TEST(RegistryTest, DuplicateIdRejected) {
  AssumptionRegistry reg;
  reg.emplace<bool>("x", "s", Subject::kHardware, test_provenance(), true, "k");
  EXPECT_THROW(
      reg.emplace<bool>("x", "s2", Subject::kHardware, test_provenance(), true, "k"),
      std::invalid_argument);
}

TEST(RegistryTest, VerifyAllFiresHandlersAndCounts) {
  AssumptionRegistry reg;
  Context ctx;
  ctx.set("a", std::int64_t{1});
  ctx.set("b", std::int64_t{2});
  reg.emplace<std::int64_t>("good", "a is 1", Subject::kHardware,
                            test_provenance(), 1, "a");
  reg.emplace<std::int64_t>("bad", "b is 99", Subject::kPhysicalEnvironment,
                            test_provenance(), 99, "b");
  int handler_calls = 0;
  reg.on_clash([&](const Clash& c, const Diagnosis& d) {
    ++handler_calls;
    EXPECT_EQ(c.assumption_id, "bad");
    EXPECT_EQ(d.syndrome, Syndrome::kHorning);
  });
  const auto clashes = reg.verify_all(ctx);
  ASSERT_EQ(clashes.size(), 1u);
  EXPECT_EQ(handler_calls, 1);
  EXPECT_EQ(reg.total_clashes(), 1u);
  EXPECT_EQ(reg.find("good")->state(), AssumptionState::kHolds);
  EXPECT_EQ(reg.find("bad")->state(), AssumptionState::kViolated);
}

// Regression: the clash-notification loop was a range-for over the handler
// vector, so a handler registering a follow-up handler re-entrantly (a
// treatment arming an observer) could reallocate the vector and invalidate
// the iteration.  The index loop delivers the current clash to the handlers
// registered when it fired; handlers added mid-notification see only
// subsequent clashes.
TEST(RegistryTest, ClashHandlerMayRegisterAnotherHandlerReentrantly) {
  AssumptionRegistry reg;
  Context ctx;
  ctx.set("k", std::int64_t{0});
  reg.emplace<std::int64_t>("a", "k is 1", Subject::kHardware,
                            test_provenance(), 1, "k");
  reg.emplace<std::int64_t>("b", "k is 2", Subject::kHardware,
                            test_provenance(), 2, "k");
  int outer_calls = 0;
  int second_calls = 0;
  int inner_calls = 0;
  bool armed = false;
  reg.on_clash([&](const Clash&, const Diagnosis&) {
    ++outer_calls;
    if (!armed) {
      armed = true;
      // Several registrations force the handler vector to reallocate while
      // the notification loop is mid-flight.
      for (int i = 0; i < 4; ++i) {
        reg.on_clash([&](const Clash&, const Diagnosis&) { ++inner_calls; });
      }
    }
  });
  reg.on_clash([&](const Clash&, const Diagnosis&) { ++second_calls; });
  const auto clashes = reg.verify_all(ctx);
  EXPECT_EQ(clashes.size(), 2u);
  EXPECT_EQ(outer_calls, 2);
  // The handler registered before verify_all hears both clashes, even
  // though the vector reallocated while clash "a" was being delivered.
  EXPECT_EQ(second_calls, 2);
  // The re-entrant handlers were registered during clash "a" and therefore
  // hear only clash "b".
  EXPECT_EQ(inner_calls, 4);
}

TEST(RegistryTest, AuditFlagsMissingProvenance) {
  AssumptionRegistry reg;
  reg.emplace<bool>("documented", "s", Subject::kHardware, test_provenance(),
                    true, "k");
  reg.emplace<bool>("hidden", "s", Subject::kHardware, Provenance{}, true, "k");
  const auto flagged = reg.audit();
  ASSERT_EQ(flagged.size(), 1u);
  EXPECT_EQ(flagged[0], "hidden");
}

TEST(RegistryTest, ReportListsEverything) {
  AssumptionRegistry reg;
  reg.emplace<bool>("a1", "statement-one", Subject::kThirdPartySoftware,
                    test_provenance(), true, "k");
  reg.emplace<bool>("a2", "statement-two", Subject::kHardware, Provenance{}, true,
                    "k");
  const std::string report = reg.report();
  EXPECT_NE(report.find("a1"), std::string::npos);
  EXPECT_NE(report.find("statement-two"), std::string::npos);
  EXPECT_NE(report.find("third-party-software"), std::string::npos);
  EXPECT_NE(report.find("MISSING"), std::string::npos);
}

// --- AssumptionVariable -----------------------------------------------------------

TEST(VariableTest, BindAndUse) {
  AssumptionVariable<std::string> v("memory-method", BindingTime::kDesign);
  v.add_alternative({"f1", "M1-ecc-scrub", 1.0});
  v.add_alternative({"f3", "M3-sel-mirror", 2.25});
  EXPECT_FALSE(v.bound());
  EXPECT_THROW((void)v.value(), std::logic_error);  // hidden assumption!
  v.bind("f3", BindingTime::kCompile, "KB said SEL-prone lot");
  EXPECT_TRUE(v.bound());
  EXPECT_EQ(v.value(), "M3-sel-mirror");
  EXPECT_EQ(v.bound_tag(), "f3");
  EXPECT_DOUBLE_EQ(v.bound_cost(), 2.25);
  EXPECT_EQ(v.history().size(), 1u);
  EXPECT_EQ(v.rebind_count(), 0u);
}

TEST(VariableTest, RebindingAtRunTimeIsRecorded) {
  AssumptionVariable<int> v("pattern", BindingTime::kDesign);
  v.add_alternative({"redoing", 1, 0.1});
  v.add_alternative({"reconfiguration", 2, 0.5});
  v.bind("redoing", BindingTime::kDeploy, "default");
  v.bind("reconfiguration", BindingTime::kRun, "alpha-count verdict");
  EXPECT_EQ(v.value(), 2);
  EXPECT_EQ(v.rebind_count(), 1u);
  EXPECT_EQ(v.history()[1].reason, "alpha-count verdict");
}

TEST(VariableTest, CannotBindBeforeDeclarationStage) {
  AssumptionVariable<int> v("x", BindingTime::kDeploy);
  v.add_alternative({"a", 1, 0});
  EXPECT_THROW(v.bind("a", BindingTime::kCompile, "too early"), std::logic_error);
  v.bind("a", BindingTime::kRun, "ok");
  EXPECT_EQ(v.value(), 1);
}

TEST(VariableTest, UnknownAlternativeAndFrozenSet) {
  AssumptionVariable<int> v("x", BindingTime::kDesign);
  v.add_alternative({"a", 1, 0});
  EXPECT_THROW(v.bind("zzz", BindingTime::kRun, ""), std::invalid_argument);
  v.bind("a", BindingTime::kRun, "");
  EXPECT_THROW(v.add_alternative({"b", 2, 0}), std::logic_error);
}

// --- Boulding -----------------------------------------------------------------

TEST(BouldingTest, ClassificationLadder) {
  EXPECT_EQ(classify(SystemTraits{}), BouldingCategory::kFramework);
  EXPECT_EQ(classify(SystemTraits{.reacts_to_inputs = true}),
            BouldingCategory::kClockwork);
  EXPECT_EQ(classify(SystemTraits{.reacts_to_inputs = true,
                                  .feedback_control = true}),
            BouldingCategory::kThermostat);
  EXPECT_EQ(classify(SystemTraits{.reacts_to_inputs = true,
                                  .revises_own_structure = true}),
            BouldingCategory::kCell);
  EXPECT_EQ(classify(SystemTraits{.reacts_to_inputs = true,
                                  .revises_own_structure = true,
                                  .revises_own_assumptions = true}),
            BouldingCategory::kPlant);
}

TEST(BouldingTest, EnvironmentDemands) {
  EXPECT_EQ(required_category(EnvironmentDemands{}), BouldingCategory::kClockwork);
  EXPECT_EQ(required_category(EnvironmentDemands{.bounded_fluctuations = true}),
            BouldingCategory::kThermostat);
  EXPECT_EQ(required_category(EnvironmentDemands{.unanticipated_change = true}),
            BouldingCategory::kCell);
}

TEST(BouldingTest, ClashDetection) {
  // The Therac case: a Clockwork deployed where fluctuation handling was
  // required.
  EXPECT_TRUE(boulding_clash(BouldingCategory::kClockwork,
                             BouldingCategory::kThermostat));
  EXPECT_FALSE(boulding_clash(BouldingCategory::kPlant,
                              BouldingCategory::kThermostat));
  EXPECT_FALSE(boulding_clash(BouldingCategory::kCell, BouldingCategory::kCell));
}

TEST(SyndromeTest, DiagnosisText) {
  const Clash clash{.assumption_id = "p",
                    .statement = "all exceptions are caught by the hardware",
                    .observed = "exceptions exist that are not caught",
                    .subject = Subject::kHardware};
  const Diagnosis d = diagnose_clash(clash);
  EXPECT_EQ(d.syndrome, Syndrome::kHorning);
  EXPECT_NE(d.explanation.find("hardware"), std::string::npos);

  const Diagnosis b =
      diagnose_boulding(BouldingCategory::kClockwork, BouldingCategory::kCell);
  EXPECT_EQ(b.syndrome, Syndrome::kBoulding);
  EXPECT_NE(b.explanation.find("sitting duck"), std::string::npos);
}

// --- Guards --------------------------------------------------------------------

TEST(GuardTest, CheckedNarrowInRange) {
  const auto r = checked_narrow<std::int16_t>(std::int64_t{32767});
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r.value, 32767);
  const auto neg = checked_narrow<std::int16_t>(std::int64_t{-32768});
  ASSERT_TRUE(neg.ok());
  EXPECT_EQ(*neg.value, -32768);
}

TEST(GuardTest, CheckedNarrowDetectsArianeOverflow) {
  // The Ariane 5 value class: horizontal velocity beyond int16.
  const auto r = checked_narrow<std::int16_t>(std::int64_t{40000});
  EXPECT_FALSE(r.ok());
  EXPECT_FALSE(r.value.has_value());
  EXPECT_NE(r.violation.find("not representable"), std::string::npos);
}

TEST(GuardTest, CheckedNarrowFromDouble) {
  EXPECT_TRUE(checked_narrow<std::int16_t>(1234.0).ok());
  EXPECT_FALSE(checked_narrow<std::int16_t>(1e9).ok());
  EXPECT_FALSE(checked_narrow<std::int16_t>(-1e9).ok());
}

TEST(GuardTest, GuardedRunsFallbackOnViolation) {
  int operation_runs = 0, fallback_runs = 0;
  const auto r = guarded<int>(
      [] { return false; },
      [&] { ++operation_runs; return 1; },
      [&] { ++fallback_runs; return -1; },
      "precondition X failed");
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(*r.value, -1);
  EXPECT_EQ(operation_runs, 0);
  EXPECT_EQ(fallback_runs, 1);
  EXPECT_EQ(r.violation, "precondition X failed");
}

TEST(GuardTest, EnvelopeGuardTracksWorstExcursion) {
  EnvelopeGuard g("horizontal-velocity", -32768, 32767);
  EXPECT_TRUE(g.admit(100));
  EXPECT_TRUE(g.admit(32767));
  EXPECT_FALSE(g.admit(40000));
  EXPECT_FALSE(g.admit(50000));
  EXPECT_FALSE(g.admit(-40000));
  EXPECT_EQ(g.violations(), 3u);
  EXPECT_DOUBLE_EQ(g.worst_excursion(), 50000 - 32767);
}

// --- ContextMonitor ----------------------------------------------------------------

TEST(MonitorTest, PeriodicVerificationAndRevisionSkip) {
  aft::sim::Simulator sim;
  AssumptionRegistry reg;
  Context ctx;
  ctx.set("k", std::int64_t{1});
  reg.emplace<std::int64_t>("a", "k is 1", Subject::kExecutionEnvironment,
                            test_provenance(), 1, "k");
  ContextMonitor monitor(sim, reg, ctx, /*period=*/10);
  monitor.start();
  sim.run_until(55);  // cycles at t=10..50
  EXPECT_EQ(monitor.cycles(), 5u);
  // First cycle verified; the other four saw an unchanged revision.
  EXPECT_EQ(monitor.skipped_cycles(), 4u);
  EXPECT_EQ(monitor.clashes_seen(), 0u);

  ctx.set("k", std::int64_t{2});  // context change -> next cycle clashes
  sim.run_until(65);
  EXPECT_EQ(monitor.clashes_seen(), 1u);

  monitor.stop();
  sim.run_all();
  const auto cycles_after_stop = monitor.cycles();
  EXPECT_LE(cycles_after_stop, monitor.cycles());
}

TEST(MonitorTest, ZeroPeriodRejected) {
  aft::sim::Simulator sim;
  AssumptionRegistry reg;
  Context ctx;
  EXPECT_THROW(ContextMonitor(sim, reg, ctx, 0), std::invalid_argument);
}

}  // namespace
