// Tests for the FFTW-comparison substrate: FFT correctness across all
// candidate algorithms and the measuring planner's binding behaviour.
#include <gtest/gtest.h>

#include <cmath>

#include "tune/fft.hpp"
#include "util/rng.hpp"

namespace {

using namespace aft::tune;

Signal random_signal(std::size_t n, std::uint64_t seed) {
  aft::util::Xoshiro256 rng(seed);
  Signal s(n);
  for (auto& x : s) x = Complex{rng.uniform01() * 2 - 1, rng.uniform01() * 2 - 1};
  return s;
}

double max_abs_diff(const Signal& a, const Signal& b) {
  double worst = 0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    worst = std::max(worst, std::abs(a[i] - b[i]));
  }
  return worst;
}

TEST(FftTest, KnownSmallTransforms) {
  // DFT of a constant signal is an impulse at bin 0.
  const Signal constant(8, Complex{1, 0});
  const Signal spectrum = naive_dft(constant);
  EXPECT_NEAR(spectrum[0].real(), 8.0, 1e-9);
  for (std::size_t k = 1; k < 8; ++k) {
    EXPECT_NEAR(std::abs(spectrum[k]), 0.0, 1e-9);
  }
  // DFT of an impulse is flat.
  Signal impulse(8, Complex{0, 0});
  impulse[0] = Complex{1, 0};
  for (const Complex& bin : naive_dft(impulse)) {
    EXPECT_NEAR(bin.real(), 1.0, 1e-9);
    EXPECT_NEAR(bin.imag(), 0.0, 1e-9);
  }
}

class FftAgreementTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(FftAgreementTest, AllAlgorithmsAgreeWithTheReference) {
  const std::size_t n = GetParam();
  const Signal input = random_signal(n, n);
  const Signal reference = naive_dft(input);
  EXPECT_LT(max_abs_diff(fft_recursive(input), reference), 1e-8 * static_cast<double>(n));
  EXPECT_LT(max_abs_diff(fft_iterative(input), reference), 1e-8 * static_cast<double>(n));
}

INSTANTIATE_TEST_SUITE_P(PowersOfTwo, FftAgreementTest,
                         ::testing::Values(1u, 2u, 4u, 8u, 16u, 64u, 256u, 1024u));

TEST(FftTest, NonPowerOfTwoRejectedByFastPaths) {
  const Signal input = random_signal(12, 1);
  EXPECT_THROW((void)fft_recursive(input), std::invalid_argument);
  EXPECT_THROW((void)fft_iterative(input), std::invalid_argument);
  EXPECT_EQ(naive_dft(input).size(), 12u);  // the general path still works
}

TEST(PlannerTest, PlansAreCachedPerSize) {
  FftPlanner planner(1);
  (void)planner.plan_for(64);
  (void)planner.plan_for(64);
  (void)planner.plan_for(128);
  EXPECT_EQ(planner.plannings(), 2u);
  EXPECT_EQ(planner.cached_plans(), 2u);
}

TEST(PlannerTest, NonPowerOfTwoBindsTheOnlyGeneralCandidate) {
  FftPlanner planner(1);
  EXPECT_EQ(planner.plan_for(12).kind, PlanKind::kNaive);
  EXPECT_EQ(planner.plan_for(1).kind, PlanKind::kNaive);
  EXPECT_THROW((void)planner.plan_for(0), std::invalid_argument);
}

TEST(PlannerTest, TransformMatchesReferenceWhateverItBinds) {
  // The planner may bind any candidate (timing-dependent); the *result*
  // must be correct regardless — validity is the invariant, speed the
  // objective.  Exactly the selector's shape: adequacy first, cost second.
  FftPlanner planner(1);
  for (const std::size_t n : {8u, 32u, 12u, 100u}) {
    const Signal input = random_signal(n, n * 7);
    EXPECT_LT(max_abs_diff(planner.transform(input), naive_dft(input)),
              1e-8 * static_cast<double>(n));
  }
}

TEST(PlannerTest, LargeSizesPreferAFastPath) {
  // At n = 1024 the O(n log n) candidates beat the O(n^2) baseline by ~two
  // orders of magnitude; timing noise cannot plausibly invert that.
  FftPlanner planner(3);
  const Plan plan = planner.plan_for(1024);
  EXPECT_NE(plan.kind, PlanKind::kNaive);
  EXPECT_GT(plan.measured_ns_per_point, 0.0);
}

}  // namespace
