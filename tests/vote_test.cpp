// Tests for voters, dtof (including the exact Fig. 5 table), and the
// Voting Farm restoring organ.
#include <gtest/gtest.h>

#include <array>

#include "vote/dtof.hpp"
#include "vote/voter.hpp"
#include "vote/voting_farm.hpp"

namespace {

using namespace aft::vote;

// --- Voters --------------------------------------------------------------------

TEST(MajorityVoteTest, EmptyAndSingleton) {
  EXPECT_FALSE(majority_vote({}).has_majority);
  const std::array<Ballot, 1> one{42};
  const auto o = majority_vote(one);
  EXPECT_TRUE(o.has_majority);
  EXPECT_EQ(o.winner, 42);
  EXPECT_EQ(o.dissent, 0u);
}

TEST(MajorityVoteTest, CleanConsensus) {
  const std::array<Ballot, 7> b{5, 5, 5, 5, 5, 5, 5};
  const auto o = majority_vote(b);
  EXPECT_TRUE(o.has_majority);
  EXPECT_EQ(o.agreeing, 7u);
  EXPECT_EQ(o.dissent, 0u);
}

TEST(MajorityVoteTest, MajorityWithDissent) {
  const std::array<Ballot, 7> b{5, 5, 9, 5, 8, 5, 7};
  const auto o = majority_vote(b);
  EXPECT_TRUE(o.has_majority);
  EXPECT_EQ(o.winner, 5);
  EXPECT_EQ(o.agreeing, 4u);
  EXPECT_EQ(o.dissent, 3u);
}

TEST(MajorityVoteTest, NoMajority) {
  const std::array<Ballot, 7> b{1, 1, 1, 2, 2, 3, 3};  // mode 3 of 7: not strict
  const auto o = majority_vote(b);
  EXPECT_FALSE(o.has_majority);
  EXPECT_EQ(o.agreeing, 3u);
}

TEST(MajorityVoteTest, ExactHalfIsNotMajority) {
  const std::array<Ballot, 4> b{1, 1, 2, 2};
  EXPECT_FALSE(majority_vote(b).has_majority);
}

TEST(PluralityVoteTest, UniqueModeWinsWithoutStrictMajority) {
  const std::array<Ballot, 7> b{1, 1, 1, 2, 2, 3, 4};
  const auto o = plurality_vote(b);
  EXPECT_TRUE(o.has_majority);
  EXPECT_EQ(o.winner, 1);
}

TEST(PluralityVoteTest, TiedModesFail) {
  const std::array<Ballot, 6> b{1, 1, 1, 2, 2, 2};
  EXPECT_FALSE(plurality_vote(b).has_majority);
}

TEST(MedianVoteTest, RobustToMinorityOutliers) {
  const std::array<Ballot, 5> b{100, 100, 100, 100000, -100000};
  EXPECT_EQ(median_vote(b), 100);
  EXPECT_FALSE(median_vote({}).has_value());
}

TEST(MedianVoteTest, EvenSizeTakesLowerMedian) {
  const std::array<Ballot, 4> b{1, 2, 3, 4};
  EXPECT_EQ(median_vote(b), 2);
}

TEST(MajorityVoteInplaceTest, MatchesCopyingVariant) {
  std::vector<Ballot> v{7, 3, 7, 3, 7};
  const auto copying = majority_vote(v);
  const auto inplace = majority_vote_inplace(v);
  EXPECT_EQ(copying.has_majority, inplace.has_majority);
  EXPECT_EQ(copying.winner, inplace.winner);
  EXPECT_EQ(copying.dissent, inplace.dissent);
}

// --- dtof: the exact Fig. 5 table -------------------------------------------------

TEST(DtofTest, Fig5TableForSevenReplicas) {
  // Fig. 5: n = 7.  (a) consensus -> 4; (b) m=1 -> 3; (c) m=2 -> 2;
  // m=3 -> 1; (d) no majority -> 0.
  EXPECT_EQ(dtof(7, 0), 4);
  EXPECT_EQ(dtof(7, 1), 3);
  EXPECT_EQ(dtof(7, 2), 2);
  EXPECT_EQ(dtof(7, 3), 1);
  EXPECT_EQ(dtof_max(7), 4);
}

TEST(DtofTest, NoMajorityOutcomeIsZero) {
  const std::array<Ballot, 7> b{1, 1, 1, 2, 2, 3, 3};
  const auto o = majority_vote(b);
  ASSERT_FALSE(o.has_majority);
  EXPECT_EQ(dtof_of_outcome(o), 0);
}

TEST(DtofTest, OutcomeDistanceMatchesFormula) {
  const std::array<Ballot, 7> b{5, 5, 5, 5, 9, 8, 7};  // m = 3
  const auto o = majority_vote(b);
  ASSERT_TRUE(o.has_majority);
  EXPECT_EQ(dtof_of_outcome(o), 1);
}

/// Property over (n, m): dtof stays within [0, ceil(n/2)] — "dtof returns
/// an integer in [0, ceil(n/2)]".
class DtofRangeTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(DtofRangeTest, RangeInvariant) {
  const std::size_t n = GetParam();
  for (std::size_t m = 0; m <= n; ++m) {
    const auto d = dtof(n, m);
    EXPECT_GE(d, 0);
    EXPECT_LE(d, dtof_max(n));
  }
  EXPECT_EQ(dtof(n, 0), dtof_max(n));  // consensus is the farthest distance
}

INSTANTIATE_TEST_SUITE_P(OddArities, DtofRangeTest,
                         ::testing::Values(1u, 3u, 5u, 7u, 9u, 11u, 21u, 99u));

// --- VotingFarm --------------------------------------------------------------------

TEST(VotingFarmTest, NullTaskRejected) {
  EXPECT_THROW(VotingFarm(3, nullptr), std::invalid_argument);
}

TEST(VotingFarmTest, EvenAritiesRoundUpToOdd) {
  VotingFarm farm(4, [](Ballot in, std::size_t) { return in; });
  EXPECT_EQ(farm.replicas(), 5u);
  VotingFarm farm0(0, [](Ballot in, std::size_t) { return in; });
  EXPECT_EQ(farm0.replicas(), 1u);
}

TEST(VotingFarmTest, UndisturbedRoundReachesConsensus) {
  VotingFarm farm(7, [](Ballot in, std::size_t) { return in * 2; });
  const RoundReport r = farm.invoke(21);
  EXPECT_TRUE(r.success);
  EXPECT_EQ(r.value, 42);
  EXPECT_EQ(r.n, 7u);
  EXPECT_EQ(r.dissent, 0u);
  EXPECT_EQ(r.distance, 4);  // Fig. 5 (a)
  EXPECT_EQ(farm.replica_invocations(), 7u);
}

TEST(VotingFarmTest, MinorityCorruptionMasked) {
  VotingFarm farm(7, [](Ballot in, std::size_t replica) {
    return replica < 3 ? in + 100 + static_cast<Ballot>(replica) : in;
  });
  const RoundReport r = farm.invoke(5);
  EXPECT_TRUE(r.success);
  EXPECT_EQ(r.value, 5);
  EXPECT_EQ(r.dissent, 3u);
  EXPECT_EQ(r.distance, 1);  // one more dissent would kill the majority
}

TEST(VotingFarmTest, MajorityCorruptionFails) {
  VotingFarm farm(7, [](Ballot in, std::size_t replica) {
    return replica < 4 ? in + 100 + static_cast<Ballot>(replica) : in;
  });
  const RoundReport r = farm.invoke(5);
  EXPECT_FALSE(r.success);
  EXPECT_EQ(r.distance, 0);
  EXPECT_EQ(farm.failures(), 1u);
}

TEST(VotingFarmTest, ResizeTakesEffectNextRound) {
  VotingFarm farm(3, [](Ballot in, std::size_t) { return in; });
  farm.resize(7);
  EXPECT_EQ(farm.replicas(), 7u);
  EXPECT_EQ(farm.invoke(0).n, 7u);
  farm.resize(6);  // rounds up
  EXPECT_EQ(farm.replicas(), 7u);
  EXPECT_EQ(farm.resizes(), 1u);  // 6->7 was a no-op (already 7)
  farm.resize(3);
  EXPECT_EQ(farm.replicas(), 3u);
  EXPECT_EQ(farm.resizes(), 2u);
}

TEST(VotingFarmTest, RoundCountersAccumulate) {
  VotingFarm farm(3, [](Ballot in, std::size_t) { return in; });
  for (int i = 0; i < 10; ++i) farm.invoke(i);
  EXPECT_EQ(farm.rounds(), 10u);
  EXPECT_EQ(farm.replica_invocations(), 30u);
  EXPECT_EQ(farm.failures(), 0u);
}

TEST(VotingFarmTest, LastBallotsAreReplicaOrderedAndUnsorted) {
  // last_ballots() must expose the round's ballots in replica order even
  // though the voter sorts its workspace in place — i.e. the farm really
  // does keep the raw ballots and the scratch separate.  A descending
  // ballot pattern makes any accidental aliasing with the sorted scratch
  // visible immediately.
  VotingFarm farm(5, [](Ballot in, std::size_t replica) {
    return replica == 1 ? in : in + 10 - static_cast<Ballot>(replica);
  });
  const RoundReport report = farm.invoke(100);
  const std::vector<Ballot>& ballots = farm.last_ballots();
  ASSERT_EQ(ballots.size(), 5u);
  EXPECT_EQ(ballots[0], 110);
  EXPECT_EQ(ballots[1], 100);  // the dissenting slot, in place
  EXPECT_EQ(ballots[2], 108);
  EXPECT_EQ(ballots[3], 107);
  EXPECT_EQ(ballots[4], 106);
  EXPECT_FALSE(report.success);  // five distinct ballots: no majority
  EXPECT_EQ(report.dissent, 4u);  // n - agreeing, with a singleton mode
}

TEST(VotingFarmTest, BallotStorageIsStableAcrossRounds) {
  // Steady-state rounds reuse the same backing storage (the hot-path
  // contract tests/alloc_test.cpp measures): the data() pointer must not
  // wander once the farm has run at its arity, including after a shrink.
  VotingFarm farm(7, [](Ballot in, std::size_t) { return in; });
  (void)farm.invoke(1);
  const Ballot* data = farm.last_ballots().data();
  for (int i = 2; i <= 50; ++i) {
    (void)farm.invoke(i);
    EXPECT_EQ(farm.last_ballots().data(), data);
  }
  farm.resize(3);  // shrink: capacity (and storage) retained
  (void)farm.invoke(51);
  EXPECT_EQ(farm.last_ballots().data(), data);
  EXPECT_EQ(farm.last_ballots().size(), 3u);
}

}  // namespace
