// System-level integration: the mission_simulator composition as an
// asserted test — launch-time self-test + manifest re-qualification, the
// three run-time strategies cooperating on one kernel, and gestalt
// propagation driven by a real clash.
#include <gtest/gtest.h>

#include <memory>

#include "autonomic/service.hpp"
#include "core/gestalt.hpp"
#include "core/web.hpp"
#include "detect/watchdog.hpp"
#include "env/platform.hpp"
#include "ftpat/pattern_switcher.hpp"
#include "ftpat/reconfiguration.hpp"
#include "ftpat/redoing.hpp"
#include "hw/machine.hpp"
#include "manifest/manifest.hpp"
#include "mem/adaptive.hpp"
#include "util/rng.hpp"

namespace {

TEST(MissionIntegration, LaunchGateRefusesADishonestPlatform) {
  aft::env::PlatformFeatures advertised{.hardware_interlocks = true,
                                        .exception_trapping = true,
                                        .watchdog_timer = true,
                                        .ecc_reporting = true};
  aft::env::PlatformFeatures actual = advertised;
  actual.watchdog_timer = false;  // the lie

  aft::env::PlatformUnderTest platform("obc", advertised, actual);
  aft::core::Context ctx;
  const auto report = aft::env::run_self_test(platform, &ctx);
  EXPECT_FALSE(report.safe_to_operate());

  // The manifest assumption depending on the watchdog must clash against
  // the PROBED truth even though the spec sheet said otherwise.
  aft::manifest::Manifest m;
  m.name = "obc-sw";
  m.assumptions.push_back(aft::manifest::AssumptionRecord{
      .id = "platform.watchdog",
      .statement = "the platform provides a watchdog timer",
      .subject = aft::core::Subject::kExecutionEnvironment,
      .origin = "safety case",
      .rationale = "hang detection",
      .stated_at = aft::core::BindingTime::kDesign,
      .expectation = aft::contract::clause_eq("platform.watchdog-timer", true)});
  const auto clashes = m.requalify(ctx);
  ASSERT_EQ(clashes.size(), 1u);
  EXPECT_EQ(clashes[0].assumption_id, "platform.watchdog");
}

TEST(MissionIntegration, ThreeStrategiesCooperateOnOneKernel) {
  // Memory (3.1) + pattern switch (3.2) + autonomic replication (3.3),
  // sharing one simulator and one context.
  aft::sim::Simulator sim;
  aft::core::Context ctx;

  // 3.1: adaptive memory on the OBC.
  aft::hw::Machine machine = aft::hw::machines::satellite_obc(128);
  aft::mem::AdaptiveMemoryManager memory(machine, aft::mem::MethodSelector{});
  ASSERT_EQ(memory.current_method(), "M3-sel-mirror");
  for (std::size_t w = 0; w < 64; ++w) memory.method().write(w, w + 7);

  // 3.2: watchdog-driven pattern switcher.
  auto plus_one = [](std::int64_t v) { return v + 1; };
  aft::arch::Middleware mw;
  auto unit = std::make_shared<aft::arch::ScriptedComponent>("u", plus_one);
  auto spare = std::make_shared<aft::arch::ScriptedComponent>("s", plus_one);
  mw.register_component(std::make_shared<aft::ftpat::RedoingComponent>("c", unit, 2));
  mw.register_component(std::make_shared<aft::ftpat::ReconfigurationComponent>(
      "c2v", std::vector<std::shared_ptr<aft::arch::Component>>{unit, spare}));
  aft::ftpat::PatternSwitcher switcher(
      mw, aft::arch::DagSnapshot{"D1", {"c"}, {}},
      aft::arch::DagSnapshot{"D2", {"c2v"}, {}},
      aft::ftpat::PatternSwitcher::Config{.monitored_channel = "c"});
  aft::detect::Watchdog dog(sim, 10, [&](aft::sim::SimTime) { switcher.run(1); });
  aft::detect::WatchedTask task(sim, dog, 5);
  dog.start();
  task.start();

  // 3.3: autonomic telemetry replication publishing into the shared context.
  aft::util::Xoshiro256 rng(5);
  double radiation = 0.0;
  aft::autonomic::AutonomicReplicationService telemetry(
      [&](aft::vote::Ballot in, std::size_t replica) -> aft::vote::Ballot {
        return (radiation > 0 && rng.bernoulli(radiation))
                   ? in + 90 + static_cast<aft::vote::Ballot>(replica)
                   : in;
      },
      aft::autonomic::AutonomicReplicationService::Options{
          .policy = {.lower_after = 200}},
      &ctx);

  // Phase 1: calm.
  for (int t = 0; t < 200; ++t) {
    sim.run_until(sim.now() + 1);
    telemetry.call(t);
  }
  EXPECT_EQ(telemetry.replicas(), 3u);
  EXPECT_EQ(switcher.active_snapshot(), "D1");

  // Phase 2: radiation ramps up (the dtof early-warning fires on the mild
  // onset, so the farm is provisioned before the peak), plus a memory
  // latch-up and a permanent unit loss.
  machine.bank(0).chip->inject_latch_up();
  task.inject_permanent_fault();
  unit->fail_always();
  for (int t = 0; t < 400; ++t) {
    radiation = t < 100 ? 0.01 : (t < 200 ? 0.05 : 0.15);
    sim.run_until(sim.now() + 1);
    telemetry.call(t);
    if (t % 16 == 0) memory.method().scrub_step();
  }
  // 3.3 grew; 3.2 switched; 3.1's duplex absorbed the latch-up in place.
  EXPECT_GT(telemetry.replicas(), 3u);
  EXPECT_EQ(telemetry.failures(), 0u);
  EXPECT_TRUE(switcher.switched());
  EXPECT_FALSE(memory.step());  // f3 binding already adequate: no escalation
  for (std::size_t w = 0; w < 64; ++w) {
    ASSERT_EQ(memory.method().read(w).value, w + 7);
  }

  // Phase 3: calm again; redundancy decays; architecture keeps computing.
  radiation = 0.0;
  for (int t = 0; t < 1500; ++t) {
    sim.run_until(sim.now() + 1);
    telemetry.call(t);
  }
  EXPECT_EQ(telemetry.replicas(), 3u);
  EXPECT_TRUE(switcher.run(1).ok);
  // The context carries the published deductions.
  EXPECT_TRUE(ctx.get<double>("env.disturbance").has_value());
  EXPECT_EQ(ctx.get<std::int64_t>("dim.redundancy.observed"), 3);
}

TEST(MissionIntegration, ClashFansOutThroughWebAndGestalt) {
  aft::core::AssumptionWeb web;
  web.add_dependency("platform.ecc", "mem.binding-adequate");
  web.add_dependency("mem.binding-adequate", "telemetry.durable");

  aft::core::GestaltBus bus;
  std::vector<std::string> requalification_worklist;
  bus.attach(aft::core::GestaltAgent(
      "model", aft::core::BindingTime::kDesign,
      [&](const aft::core::GestaltEvent& e) {
        for (const auto& suspect : web.suspects_of(e.topic)) {
          requalification_worklist.push_back(suspect);
        }
      }));

  // A run-time clash on the ECC premise...
  bus.publish(aft::core::GestaltEvent{aft::core::GestaltKind::kAssumptionFailure,
                                      aft::core::BindingTime::kRun,
                                      "platform.ecc", "observed: swallowed"});
  // ...produces the transitive re-qualification work-list at the model layer.
  EXPECT_EQ(requalification_worklist,
            (std::vector<std::string>{"mem.binding-adequate",
                                      "telemetry.durable"}));
}

}  // namespace
