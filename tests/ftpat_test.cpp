// Tests for the fault-tolerance design patterns of Sect. 3.2 and the
// alpha-count-driven PatternSwitcher (the D1 -> D2 transition of Fig. 3).
#include <gtest/gtest.h>

#include <memory>

#include "arch/middleware.hpp"
#include "ftpat/nversion.hpp"
#include "ftpat/pattern_switcher.hpp"
#include "ftpat/reconfiguration.hpp"
#include "ftpat/recovery_blocks.hpp"
#include "ftpat/redoing.hpp"

namespace {

using namespace aft::ftpat;
using aft::arch::Component;
using aft::arch::DagSnapshot;
using aft::arch::Middleware;
using aft::arch::ScriptedComponent;

std::shared_ptr<ScriptedComponent> scripted(const std::string& id) {
  return std::make_shared<ScriptedComponent>(id,
                                             [](std::int64_t v) { return v + 1; });
}

// --- Redoing -------------------------------------------------------------------

TEST(RedoingTest, NullInnerRejected) {
  EXPECT_THROW(RedoingComponent("r", nullptr), std::invalid_argument);
}

TEST(RedoingTest, MasksTransientFaults) {
  auto inner = scripted("c3");
  RedoingComponent redo("c3-redo", inner, 5);
  inner->fail_next(3);
  const auto r = redo.process(10);
  EXPECT_TRUE(r.ok);
  EXPECT_EQ(r.value, 11);
  EXPECT_EQ(redo.retries(), 3u);
  EXPECT_EQ(redo.budget_exhaustions(), 0u);
}

TEST(RedoingTest, PermanentFaultExhaustsBudget) {
  // The e1 clash: redoing against a permanent fault livelocks; the budget
  // turns the livelock into a measurable exhaustion.
  auto inner = scripted("c3");
  RedoingComponent redo("c3-redo", inner, 16);
  inner->fail_always();
  const auto r = redo.process(10);
  EXPECT_FALSE(r.ok);
  EXPECT_EQ(redo.retries(), 16u);
  EXPECT_EQ(redo.budget_exhaustions(), 1u);
  EXPECT_EQ(inner->invocations(), 17u);  // 1 + 16 futile retries
}

TEST(RedoingTest, NoFaultNoRetries) {
  auto inner = scripted("c3");
  RedoingComponent redo("r", inner);
  for (int i = 0; i < 10; ++i) EXPECT_TRUE(redo.process(i).ok);
  EXPECT_EQ(redo.retries(), 0u);
}

// --- Reconfiguration ---------------------------------------------------------------

TEST(ReconfigurationTest, EmptyVersionsRejected) {
  EXPECT_THROW(ReconfigurationComponent("r", {}), std::invalid_argument);
}

TEST(ReconfigurationTest, SwitchesToSpareOnPermanentFault) {
  auto primary = scripted("c3.1");
  auto secondary = scripted("c3.2");
  ReconfigurationComponent reconf("c3", {primary, secondary});
  primary->fail_always();
  const auto r = reconf.process(10);
  EXPECT_TRUE(r.ok);
  EXPECT_EQ(r.value, 11);
  EXPECT_EQ(reconf.active_index(), 1u);
  EXPECT_EQ(reconf.switchovers(), 1u);
  EXPECT_EQ(reconf.spares_remaining(), 0u);
  // No fail-back: primary repaired later is NOT re-engaged.
  primary->repair();
  reconf.process(10);
  EXPECT_EQ(reconf.active_index(), 1u);
}

TEST(ReconfigurationTest, TransientFaultWastesASpare) {
  // The e2 clash: reconfiguration under transient faults permanently burns
  // spares that redoing would have saved.
  auto primary = scripted("p");
  auto spare = scripted("s");
  ReconfigurationComponent reconf("r", {primary, spare});
  primary->fail_next(1);  // transient!
  EXPECT_TRUE(reconf.process(0).ok);
  EXPECT_EQ(reconf.switchovers(), 1u);
  EXPECT_EQ(reconf.spares_remaining(), 0u);  // resource gone for a blip
}

TEST(ReconfigurationTest, ExhaustedSparesFail) {
  auto a = scripted("a");
  auto b = scripted("b");
  ReconfigurationComponent reconf("r", {a, b});
  a->fail_always();
  b->fail_always();
  EXPECT_FALSE(reconf.process(0).ok);
  EXPECT_EQ(reconf.spares_remaining(), 0u);
}

// --- Recovery Blocks ----------------------------------------------------------------

TEST(RecoveryBlocksTest, ConstructorValidation) {
  auto a = scripted("a");
  EXPECT_THROW(RecoveryBlocksComponent("r", {}, [](auto, auto) { return true; }),
               std::invalid_argument);
  EXPECT_THROW(RecoveryBlocksComponent("r", {a}, nullptr), std::invalid_argument);
}

TEST(RecoveryBlocksTest, PrimaryPassesAcceptance) {
  auto primary = scripted("p");
  auto alternate = scripted("a");
  RecoveryBlocksComponent rb("rb", {primary, alternate},
                             [](std::int64_t, std::int64_t out) { return out > 0; });
  EXPECT_TRUE(rb.process(5).ok);
  EXPECT_EQ(rb.fallbacks(), 0u);
  EXPECT_EQ(alternate->invocations(), 0u);
}

TEST(RecoveryBlocksTest, RejectedPrimaryFallsBack) {
  // Primary has a design fault: returns a negative (unacceptable) value.
  auto primary = std::make_shared<ScriptedComponent>(
      "p", [](std::int64_t) { return std::int64_t{-1}; });
  auto alternate = scripted("a");
  RecoveryBlocksComponent rb("rb", {primary, alternate},
                             [](std::int64_t, std::int64_t out) { return out >= 0; });
  const auto r = rb.process(5);
  EXPECT_TRUE(r.ok);
  EXPECT_EQ(r.value, 6);
  EXPECT_EQ(rb.fallbacks(), 1u);
  EXPECT_EQ(rb.rejections(), 1u);
}

TEST(RecoveryBlocksTest, FailedPrimaryFallsBack) {
  auto primary = scripted("p");
  auto alternate = scripted("a");
  RecoveryBlocksComponent rb("rb", {primary, alternate},
                             [](std::int64_t, std::int64_t) { return true; });
  primary->fail_always();
  EXPECT_TRUE(rb.process(1).ok);
  EXPECT_EQ(rb.fallbacks(), 1u);
  EXPECT_EQ(rb.rejections(), 0u);
}

TEST(RecoveryBlocksTest, AllAlternatesExhausted) {
  auto a = scripted("a");
  auto b = scripted("b");
  RecoveryBlocksComponent rb("rb", {a, b},
                             [](std::int64_t, std::int64_t) { return false; });
  EXPECT_FALSE(rb.process(1).ok);
  EXPECT_EQ(rb.exhaustions(), 1u);
  EXPECT_EQ(rb.rejections(), 2u);
}

// --- N-Version ------------------------------------------------------------------------

TEST(NVersionTest, AllAgree) {
  NVersionComponent nv("nv", {scripted("v1"), scripted("v2"), scripted("v3")});
  const auto r = nv.process(10);
  EXPECT_TRUE(r.ok);
  EXPECT_EQ(r.value, 11);
  EXPECT_EQ(nv.masked_divergences(), 0u);
}

TEST(NVersionTest, MasksOneDivergentVersion) {
  auto v1 = scripted("v1");
  auto v2 = scripted("v2");
  auto v3 = scripted("v3");
  NVersionComponent nv("nv", {v1, v2, v3});
  v2->corrupt_next(1, 999);  // silent design-fault divergence
  const auto r = nv.process(10);
  EXPECT_TRUE(r.ok);
  EXPECT_EQ(r.value, 11);
  EXPECT_EQ(nv.masked_divergences(), 1u);
}

TEST(NVersionTest, MasksOneCrashedVersion) {
  auto v1 = scripted("v1");
  NVersionComponent nv("nv", {v1, scripted("v2"), scripted("v3")});
  v1->fail_always();
  EXPECT_TRUE(nv.process(0).ok);   // 2-of-3 still a strict majority
  EXPECT_EQ(nv.masked_divergences(), 1u);
}

TEST(NVersionTest, TwoDivergentVersionsDefeatVoting) {
  auto v1 = scripted("v1");
  auto v2 = scripted("v2");
  NVersionComponent nv("nv", {v1, v2, scripted("v3")});
  v1->corrupt_next(1, 100);
  v2->corrupt_next(1, 200);  // three distinct answers: no majority
  EXPECT_FALSE(nv.process(0).ok);
  EXPECT_EQ(nv.vote_failures(), 1u);
}

TEST(NVersionTest, CommonModeFailureWinsVote) {
  // The known NVP weakness: correlated identical errors outvote the truth.
  auto v1 = scripted("v1");
  auto v2 = scripted("v2");
  NVersionComponent nv("nv", {v1, v2, scripted("v3")});
  v1->corrupt_next(1, 100);
  v2->corrupt_next(1, 100);  // same wrong answer
  const auto r = nv.process(0);
  EXPECT_TRUE(r.ok);
  EXPECT_EQ(r.value, 101);  // wrong, but agreed upon: voting cannot know
}

// --- PatternSwitcher (Fig. 3 + Fig. 4 combined) ------------------------------------------

struct SwitcherFixture {
  Middleware mw;
  std::shared_ptr<ScriptedComponent> c3_inner = scripted("c3-inner");
  std::shared_ptr<ScriptedComponent> c31 = scripted("c3.1-inner");
  std::shared_ptr<ScriptedComponent> c32 = scripted("c3.2-inner");

  SwitcherFixture() {
    mw.register_component(scripted("c1"));
    mw.register_component(scripted("c2"));
    mw.register_component(scripted("c4"));
    // D1's c3: redoing around the (possibly faulty) inner component.
    mw.register_component(
        std::make_shared<RedoingComponent>("c3", c3_inner, 4));
    // D2's c3: 2-version reconfiguration; the primary shares the fate of
    // the D1 inner unit (same physical component), the secondary is
    // independent.
    mw.register_component(std::make_shared<ReconfigurationComponent>(
        "c3v2", std::vector<std::shared_ptr<Component>>{c31, c32}));
  }

  DagSnapshot d1() const {
    return DagSnapshot{"D1",
                       {"c1", "c2", "c3", "c4"},
                       {{"c1", "c2"}, {"c2", "c3"}, {"c3", "c4"}}};
  }
  DagSnapshot d2() const {
    return DagSnapshot{"D2",
                       {"c1", "c2", "c3v2", "c4"},
                       {{"c1", "c2"}, {"c2", "c3v2"}, {"c3v2", "c4"}}};
  }
};

TEST(PatternSwitcherTest, StartsOnD1) {
  SwitcherFixture f;
  PatternSwitcher sw(f.mw, f.d1(), f.d2(),
                     PatternSwitcher::Config{.monitored_channel = "c3"});
  EXPECT_EQ(sw.active_snapshot(), "D1");
  EXPECT_FALSE(sw.switched());
  EXPECT_TRUE(sw.run(1).ok);
}

TEST(PatternSwitcherTest, TransientFaultsStayOnD1) {
  SwitcherFixture f;
  PatternSwitcher sw(f.mw, f.d1(), f.d2(),
                     PatternSwitcher::Config{.monitored_channel = "c3"});
  for (int i = 0; i < 200; ++i) {
    if (i % 40 == 0) f.c3_inner->fail_next(2);  // sparse transient blips
    EXPECT_TRUE(sw.run(i).ok);  // redoing masks them
  }
  EXPECT_EQ(sw.active_snapshot(), "D1");
  EXPECT_FALSE(sw.switched());
  EXPECT_EQ(sw.judgment(), aft::detect::FaultJudgment::kNoEvidence)
      << "redoing masked the blips, so the oracle never saw an error";
}

TEST(PatternSwitcherTest, PermanentFaultTriggersD2AndRecovers) {
  SwitcherFixture f;
  PatternSwitcher sw(f.mw, f.d1(), f.d2(),
                     PatternSwitcher::Config{.monitored_channel = "c3"});
  // Healthy warm-up.
  for (int i = 0; i < 50; ++i) ASSERT_TRUE(sw.run(i).ok);

  // Permanent fault in the physical unit behind c3 (and behind D2's
  // primary c3.1 — same hardware).
  f.c3_inner->fail_always();
  f.c31->fail_always();

  int failed_runs = 0;
  for (int i = 0; i < 20 && !sw.switched(); ++i) {
    if (!sw.run(i).ok) ++failed_runs;
  }
  EXPECT_TRUE(sw.switched());
  EXPECT_EQ(sw.active_snapshot(), "D2");
  EXPECT_GT(failed_runs, 0);  // the faulty phase was visible
  // On D2 the reconfiguration pattern engages the healthy secondary.
  for (int i = 0; i < 50; ++i) EXPECT_TRUE(sw.run(i).ok);
  EXPECT_GT(sw.alpha_score(), 0.0);
}

TEST(PatternSwitcherTest, ScoreTraceGrowsMonotonicallyUnderPermanentFault) {
  SwitcherFixture f;
  PatternSwitcher sw(f.mw, f.d1(), f.d2(),
                     PatternSwitcher::Config{.monitored_channel = "c3"});
  f.c3_inner->fail_always();
  f.c31->fail_always();
  for (int i = 0; i < 4; ++i) sw.run(i);
  const auto& trace = sw.score_trace();
  ASSERT_EQ(trace.size(), 4u);
  // Errors every round: alpha = 1,2,3,4 exactly (Fig. 4's ramp).
  EXPECT_DOUBLE_EQ(trace[0], 1.0);
  EXPECT_DOUBLE_EQ(trace[1], 2.0);
  EXPECT_DOUBLE_EQ(trace[2], 3.0);
  EXPECT_DOUBLE_EQ(trace[3], 4.0);
  EXPECT_TRUE(sw.switched());
}

TEST(PatternSwitcherTest, UnmonitoredChannelFaultsDoNotSwitch) {
  SwitcherFixture f;
  auto c1 = std::dynamic_pointer_cast<ScriptedComponent>(f.mw.lookup("c1"));
  ASSERT_NE(c1, nullptr);
  PatternSwitcher sw(f.mw, f.d1(), f.d2(),
                     PatternSwitcher::Config{.monitored_channel = "c3"});
  c1->fail_always();
  for (int i = 0; i < 20; ++i) sw.run(i);
  EXPECT_FALSE(sw.switched());  // c1's faults are not c3's
  EXPECT_DOUBLE_EQ(sw.alpha_score(), 0.0);
}

}  // namespace
