// Tests for weighted and inexact (epsilon) voters.
#include <gtest/gtest.h>

#include <array>

#include "vote/weighted.hpp"

namespace {

using namespace aft::vote;

// --- weighted_majority_vote ---------------------------------------------------

TEST(WeightedVoteTest, SizeMismatchRejected) {
  const std::array<Ballot, 2> b{1, 2};
  const std::array<double, 3> w{1, 1, 1};
  EXPECT_THROW((void)weighted_majority_vote(b, w), std::invalid_argument);
}

TEST(WeightedVoteTest, EqualWeightsMatchPlainMajority) {
  const std::array<Ballot, 5> b{7, 7, 7, 2, 3};
  const std::array<double, 5> w{1, 1, 1, 1, 1};
  const auto outcome = weighted_majority_vote(b, w);
  EXPECT_TRUE(outcome.has_majority);
  EXPECT_EQ(outcome.winner, 7);
  EXPECT_EQ(outcome.agreeing, 3u);
  EXPECT_EQ(outcome.dissent, 2u);
}

TEST(WeightedVoteTest, HeavyReplicaOutweighsCount) {
  // Two light replicas agree on 5; one trusted heavy replica says 9.
  const std::array<Ballot, 3> b{5, 5, 9};
  const std::array<double, 3> w{1, 1, 5};
  const auto outcome = weighted_majority_vote(b, w);
  EXPECT_TRUE(outcome.has_majority);
  EXPECT_EQ(outcome.winner, 9);
}

TEST(WeightedVoteTest, ExactHalfWeightIsNotMajority) {
  const std::array<Ballot, 2> b{1, 2};
  const std::array<double, 2> w{1, 1};
  EXPECT_FALSE(weighted_majority_vote(b, w).has_majority);
}

TEST(WeightedVoteTest, NonPositiveWeightIsObserver) {
  const std::array<Ballot, 3> b{5, 9, 9};
  const std::array<double, 3> w{1, 0, -2};
  const auto outcome = weighted_majority_vote(b, w);
  EXPECT_TRUE(outcome.has_majority);
  EXPECT_EQ(outcome.winner, 5);  // the 9s carried no weight
}

TEST(WeightedVoteTest, AllZeroWeightsFail) {
  const std::array<Ballot, 3> b{5, 5, 5};
  const std::array<double, 3> w{0, 0, 0};
  EXPECT_FALSE(weighted_majority_vote(b, w).has_majority);
}

TEST(WeightedVoteTest, EmptyBallots) {
  EXPECT_FALSE(weighted_majority_vote({}, {}).has_majority);
}

// --- epsilon_vote ----------------------------------------------------------------

TEST(EpsilonVoteTest, NegativeEpsilonRejected) {
  const std::array<double, 1> b{1.0};
  EXPECT_THROW((void)epsilon_vote(b, -0.1), std::invalid_argument);
}

TEST(EpsilonVoteTest, ExactAgreementAtZeroEpsilon) {
  const std::array<double, 5> b{1.0, 1.0, 1.0, 2.0, 3.0};
  const auto outcome = epsilon_vote(b, 0.0);
  EXPECT_TRUE(outcome.has_majority);
  EXPECT_DOUBLE_EQ(outcome.value, 1.0);
  EXPECT_EQ(outcome.cluster_size, 3u);
}

TEST(EpsilonVoteTest, AnalogNoiseMaskedByEpsilon) {
  // Five sensors reading ~20.0 with noise; exact voting would see five
  // distinct values and fail; epsilon voting clusters them.
  const std::array<double, 5> b{19.98, 20.01, 20.02, 19.99, 27.5};
  EXPECT_FALSE(epsilon_vote(b, 0.0).has_majority);
  const auto outcome = epsilon_vote(b, 0.1);
  EXPECT_TRUE(outcome.has_majority);
  EXPECT_EQ(outcome.cluster_size, 4u);
  EXPECT_NEAR(outcome.value, 20.0, 0.05);
}

TEST(EpsilonVoteTest, ChainClusteringIsContiguous) {
  const std::array<double, 3> b{1.0, 1.04, 1.08};
  const auto outcome = epsilon_vote(b, 0.1);
  EXPECT_EQ(outcome.cluster_size, 3u);  // spread 0.08 <= eps: one window
  EXPECT_TRUE(outcome.has_majority);
  EXPECT_DOUBLE_EQ(outcome.value, 1.04);  // cluster median
  // Tighter epsilon splits the chain: best window holds 2 of 3, which is
  // still a strict majority.
  const auto tight = epsilon_vote(b, 0.05);
  EXPECT_EQ(tight.cluster_size, 2u);
  EXPECT_TRUE(tight.has_majority);
}

TEST(EpsilonVoteTest, BimodalSplitFails) {
  const std::array<double, 4> b{1.0, 1.01, 5.0, 5.01};
  const auto outcome = epsilon_vote(b, 0.1);
  EXPECT_EQ(outcome.cluster_size, 2u);
  EXPECT_FALSE(outcome.has_majority);  // 2 of 4 is not strict
}

TEST(EpsilonVoteTest, EmptyAndSingleton) {
  EXPECT_FALSE(epsilon_vote({}, 1.0).has_majority);
  const std::array<double, 1> one{3.14};
  const auto outcome = epsilon_vote(one, 0.0);
  EXPECT_TRUE(outcome.has_majority);
  EXPECT_DOUBLE_EQ(outcome.value, 3.14);
}

}  // namespace
