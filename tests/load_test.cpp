// Tests for the open-system traffic plane (src/load + util/arrival.hpp):
// golden-pinned sampler determinism, closed-form mean/tail sanity, the
// service-side admission policies (reject-newest / reject-oldest /
// probabilistic) at the invoke-queue level, and a small end-to-end
// ClientPopulation run proving phase accounting and same-seed determinism.
//
// Heartbeats re-arm forever, so population runs bound the clock and drive
// sim.step() until done() instead of run_all().
#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "cluster/replica.hpp"
#include "load/traffic.hpp"
#include "net/link.hpp"
#include "sim/simulator.hpp"
#include "util/arrival.hpp"
#include "util/rng.hpp"
#include "vote/voting_farm.hpp"

namespace {

using aft::cluster::ClusterParams;
using aft::cluster::InvokeOutcome;
using aft::cluster::ReplicatedService;
using aft::cluster::ShedPolicy;
using aft::load::Arrival;
using aft::load::ClientPopulation;
using aft::load::TrafficParams;
using aft::net::LinkFaults;
using aft::sim::Simulator;
using aft::util::diurnal_factor;
using aft::util::exponential_gap;
using aft::util::OnOffModulator;
using aft::util::pareto_int;
using aft::util::Xoshiro256;
using aft::vote::Ballot;
using aft::vote::RoundReport;

// --- Arrival samplers ---

// The samplers are pure functions of the RNG stream: these sequences are
// the byte-determinism contract the trace-diff CI jobs rely on.  If one
// changes, every recorded campaign trace changes with it.
TEST(ArrivalTest, ExponentialGapGoldenSequence) {
  Xoshiro256 rng(1234);
  const std::uint64_t expect[] = {1, 18, 11, 20, 1, 22, 5, 2};
  for (std::uint64_t e : expect) EXPECT_EQ(exponential_gap(rng, 10.0), e);
}

TEST(ArrivalTest, ParetoIntGoldenSequence) {
  Xoshiro256 rng(1234);
  const std::uint64_t expect[] = {1, 2, 1, 2, 1, 3, 1, 1};
  for (std::uint64_t e : expect) {
    EXPECT_EQ(pareto_int(rng, 1.0, 2.0, 1000), e);
  }
}

TEST(ArrivalTest, OnOffModulatorGoldenSequence) {
  Xoshiro256 rng(77);
  OnOffModulator mod({});
  const std::uint64_t expect[] = {205, 10, 40, 8, 2, 1, 13, 10};
  for (std::uint64_t e : expect) EXPECT_EQ(mod.next_gap(rng, 100.0), e);
}

TEST(ArrivalTest, ExponentialGapMeanMatchesClosedForm) {
  Xoshiro256 rng(9);
  double sum = 0.0;
  constexpr int kSamples = 200000;
  for (int i = 0; i < kSamples; ++i) {
    const std::uint64_t gap = exponential_gap(rng, 20.0);
    EXPECT_GE(gap, 1u);
    sum += static_cast<double>(gap);
  }
  // Flooring shifts the continuous mean (20) down by ~0.5; the >=1 clamp
  // nudges it back up a little.
  const double mean = sum / kSamples;
  EXPECT_GT(mean, 19.0);
  EXPECT_LT(mean, 20.5);
}

TEST(ArrivalTest, ParetoIntIsHeavyTailedWithinBounds) {
  Xoshiro256 rng(9);
  double sum = 0.0;
  std::uint64_t max_seen = 0;
  constexpr int kSamples = 200000;
  constexpr std::uint64_t kCap = 100000;
  for (int i = 0; i < kSamples; ++i) {
    const std::uint64_t v = pareto_int(rng, 1.0, 2.0, kCap);
    EXPECT_GE(v, 1u);
    EXPECT_LE(v, kCap);
    sum += static_cast<double>(v);
    max_seen = std::max(max_seen, v);
  }
  // Continuous Pareto(xm=1, alpha=2) has mean 2; flooring pulls the
  // integer mean toward 1.5.  Heavy tail: the max dwarfs the mean.
  const double mean = sum / kSamples;
  EXPECT_GT(mean, 1.4);
  EXPECT_LT(mean, 1.9);
  EXPECT_GT(max_seen, 100u);
}

TEST(ArrivalTest, ParetoIntRespectsTheCap) {
  Xoshiro256 rng(5);
  for (int i = 0; i < 50000; ++i) {
    const std::uint64_t v = pareto_int(rng, 1.0, 1.1, 8);
    EXPECT_GE(v, 1u);
    EXPECT_LE(v, 8u);
  }
}

TEST(ArrivalTest, DiurnalFactorIsAUnitEndpointBumpPeakingMidRun) {
  EXPECT_DOUBLE_EQ(diurnal_factor(0.0, 10.0), 1.0);
  EXPECT_DOUBLE_EQ(diurnal_factor(1.0, 10.0), 1.0);
  EXPECT_DOUBLE_EQ(diurnal_factor(0.5, 10.0), 11.0);
  EXPECT_DOUBLE_EQ(diurnal_factor(0.25, 10.0), diurnal_factor(0.75, 10.0));
  // Out-of-range progress clamps to the endpoints.
  EXPECT_DOUBLE_EQ(diurnal_factor(-3.0, 10.0), 1.0);
  EXPECT_DOUBLE_EQ(diurnal_factor(2.0, 10.0), 1.0);
  // Rising on the first half.
  EXPECT_LT(diurnal_factor(0.1, 10.0), diurnal_factor(0.3, 10.0));
  EXPECT_LT(diurnal_factor(0.3, 10.0), diurnal_factor(0.5, 10.0));
}

TEST(ArrivalTest, OnOffModulatorMixesBurstAndIdleRegimes) {
  Xoshiro256 a(321);
  Xoshiro256 b(321);
  OnOffModulator mod_a({});
  OnOffModulator mod_b({});
  std::uint64_t min_gap = ~0ull;
  std::uint64_t max_gap = 0;
  for (int i = 0; i < 10000; ++i) {
    const std::uint64_t gap = mod_a.next_gap(a, 100.0);
    EXPECT_EQ(mod_b.next_gap(b, 100.0), gap);  // same seed, same stream
    min_gap = std::min(min_gap, gap);
    max_gap = std::max(max_gap, gap);
  }
  // In-burst gaps draw from mean 100/8; idle gaps from mean 100*8.
  EXPECT_LT(min_gap, 50u);
  EXPECT_GT(max_gap, 300u);
}

// --- Admission control (service-side invoke queue) ---

LinkFaults quiet_wire() {
  LinkFaults f;
  f.latency = 2;
  f.jitter = 1;
  return f;
}

ClusterParams admission_params(std::size_t queue_limit, ShedPolicy policy) {
  ClusterParams p;
  p.pool = 5;
  p.wire.to_replica = quiet_wire();
  p.wire.from_replica = quiet_wire();
  p.policy.min_replicas = 3;
  p.policy.max_replicas = 5;
  p.policy.step = 2;
  p.policy.lower_after = 1u << 20;
  p.call.deadline = 15;
  p.call.retry.max_attempts = 2;
  p.call.retry.initial_backoff = 4;
  p.call.retry.max_backoff = 8;
  p.heartbeat_period = 4;
  p.membership.deadline = 10;
  p.admission.queue_limit = queue_limit;
  p.admission.policy = policy;
  return p;
}

Ballot correct_value(Ballot input) { return input * 2 + 1; }

/// Tagged invoke outcome: which input, and whether admission shed it.
struct Tagged {
  Ballot input;
  bool shed;
};

void burst_invoke(Simulator& sim, ReplicatedService& service,
                  std::vector<Tagged>& outcomes, Ballot count) {
  sim.schedule_at(1, [&service, &outcomes, count] {
    for (Ballot k = 0; k < count; ++k) {
      service.invoke(k, [&outcomes, k](InvokeOutcome o, const RoundReport& r) {
        outcomes.push_back({k, o == InvokeOutcome::kShed});
        if (o == InvokeOutcome::kShed) {
          // A shed report is empty: no round ran.
          EXPECT_FALSE(r.success);
          EXPECT_EQ(r.n, 0u);
        } else {
          EXPECT_TRUE(r.success);
          EXPECT_EQ(r.value, correct_value(k));
        }
      });
    }
  });
}

std::vector<Ballot> picked(const std::vector<Tagged>& outcomes, bool shed) {
  std::vector<Ballot> v;
  for (const Tagged& t : outcomes) {
    if (t.shed == shed) v.push_back(t.input);
  }
  return v;
}

TEST(AdmissionTest, RejectNewestShedsTheIncomingInvokeAtTheLimit) {
  Simulator sim;
  ReplicatedService service(
      sim, admission_params(2, ShedPolicy::kRejectNewest),
      [](Ballot input, std::size_t) { return correct_value(input); }, 11);
  service.start();

  std::vector<Tagged> outcomes;
  burst_invoke(sim, service, outcomes, 6);
  sim.run_until(400);

  ASSERT_EQ(outcomes.size(), 6u);
  // 0 runs, 1 and 2 queue, 3..5 arrive full and are tail-dropped.
  EXPECT_EQ(picked(outcomes, /*shed=*/true), (std::vector<Ballot>{3, 4, 5}));
  EXPECT_EQ(picked(outcomes, /*shed=*/false), (std::vector<Ballot>{0, 1, 2}));
  EXPECT_EQ(service.counters().admitted, 3u);
  EXPECT_EQ(service.counters().shed, 3u);
  EXPECT_EQ(service.counters().queue_peak, 2u);
  EXPECT_EQ(service.counters().rounds, 3u);
}

TEST(AdmissionTest, RejectOldestEvictsTheQueueHeadAndAdmitsTheTail) {
  Simulator sim;
  ReplicatedService service(
      sim, admission_params(2, ShedPolicy::kRejectOldest),
      [](Ballot input, std::size_t) { return correct_value(input); }, 12);
  service.start();

  std::vector<Tagged> outcomes;
  burst_invoke(sim, service, outcomes, 6);
  sim.run_until(400);

  ASSERT_EQ(outcomes.size(), 6u);
  // 0 runs; 1,2 queue; each later arrival evicts the then-oldest queued
  // invoke, so the freshest work survives: 4 and 5 complete, 1..3 shed in
  // arrival order.
  EXPECT_EQ(picked(outcomes, /*shed=*/true), (std::vector<Ballot>{1, 2, 3}));
  EXPECT_EQ(picked(outcomes, /*shed=*/false), (std::vector<Ballot>{0, 4, 5}));
  EXPECT_EQ(service.counters().admitted, 6u);  // 1..3 admitted, then evicted
  EXPECT_EQ(service.counters().shed, 3u);
  EXPECT_EQ(service.counters().queue_peak, 2u);
  EXPECT_EQ(service.counters().rounds, 3u);
}

TEST(AdmissionTest, ProbabilisticShedsProportionallyAndBoundsTheQueue) {
  Simulator sim;
  ReplicatedService service(
      sim, admission_params(4, ShedPolicy::kProbabilistic),
      [](Ballot input, std::size_t) { return correct_value(input); }, 13);
  service.start();

  std::vector<Tagged> outcomes;
  burst_invoke(sim, service, outcomes, 40);
  sim.run_until(2000);

  // Every invoke resolved exactly once, one way or the other.
  ASSERT_EQ(outcomes.size(), 40u);
  const auto shed = picked(outcomes, /*shed=*/true).size();
  const auto completed = picked(outcomes, /*shed=*/false).size();
  EXPECT_EQ(shed + completed, 40u);
  EXPECT_EQ(service.counters().admitted + service.counters().shed, 40u);
  // P = depth/limit: some sheds, some admissions, never a queue overflow.
  EXPECT_GT(shed, 0u);
  EXPECT_GT(completed, 1u);
  EXPECT_LE(service.counters().queue_peak, 4u);
}

TEST(AdmissionTest, UnboundedQueueNeverSheds) {
  Simulator sim;
  ReplicatedService service(
      sim, admission_params(0, ShedPolicy::kRejectNewest),
      [](Ballot input, std::size_t) { return correct_value(input); }, 14);
  service.start();

  std::vector<Tagged> outcomes;
  burst_invoke(sim, service, outcomes, 6);
  sim.run_until(400);

  ASSERT_EQ(outcomes.size(), 6u);
  EXPECT_TRUE(picked(outcomes, /*shed=*/true).empty());
  EXPECT_EQ(service.counters().shed, 0u);
  EXPECT_EQ(service.counters().queue_peak, 5u);
  EXPECT_EQ(service.counters().rounds, 6u);
}

// --- ClientPopulation end to end ---

TrafficParams small_traffic(std::size_t clients) {
  TrafficParams tp;
  tp.clients = clients;
  tp.warm_gap = 8.0;
  tp.overload_gap = 2.0;
  tp.recovery_gap = 8.0;
  tp.think_mean = 6.0;
  tp.session_cap = 16;
  tp.call.deadline = 2000;  // never the binding constraint in these runs
  tp.call.retry.max_attempts = 1;
  return tp;
}

struct PopulationRun {
  std::array<aft::load::PhaseStats, ClientPopulation::kPhases> phases;
  std::size_t peak_sessions = 0;
  std::uint64_t service_shed = 0;
};

PopulationRun run_population(std::size_t clients, Arrival arrival,
                             std::uint64_t seed) {
  Simulator sim;
  ReplicatedService service(
      sim, admission_params(4, ShedPolicy::kRejectNewest),
      [](Ballot input, std::size_t) { return correct_value(input); }, seed);
  TrafficParams tp = small_traffic(clients);
  tp.arrival = arrival;
  ClientPopulation population(sim, service, tp, seed + 100);
  service.start();
  population.start();
  while (!population.done() && sim.now() < 4'000'000 && sim.step()) {
  }
  EXPECT_TRUE(population.done());
  EXPECT_EQ(population.started_sessions(), clients);
  EXPECT_EQ(population.active_sessions(), 0u);

  PopulationRun out;
  for (std::size_t i = 0; i < ClientPopulation::kPhases; ++i) {
    out.phases[i] = population.phase(i);
  }
  out.peak_sessions = population.peak_sessions();
  out.service_shed = service.counters().shed;
  return out;
}

TEST(ClientPopulationTest, SmallPopulationCompletesWithConsistentTallies) {
  const PopulationRun run = run_population(300, Arrival::kPoisson, 41);

  // 20 / 60 / 20 phase split over 300 clients.
  EXPECT_EQ(run.phases[0].sessions, 60u);
  EXPECT_EQ(run.phases[1].sessions, 180u);
  EXPECT_EQ(run.phases[2].sessions, 60u);

  std::uint64_t requests = 0;
  std::uint64_t ok = 0;
  std::uint64_t shed = 0;
  for (const auto& phase : run.phases) {
    // Every issued request resolved as exactly one of ok/shed/failed.
    EXPECT_EQ(phase.requests, phase.ok + phase.shed + phase.failed);
    EXPECT_GE(phase.requests, phase.sessions);  // >= 1 request per session
    EXPECT_EQ(phase.latency.count(), phase.ok + phase.failed);
    requests += phase.requests;
    ok += phase.ok;
    shed += phase.shed;
  }
  EXPECT_GT(requests, 300u);
  EXPECT_GT(ok, 0u);
  // The overload phase outruns a queue of 4: admission must have shed, and
  // the client-side shed tally is the service-side one.
  EXPECT_GT(shed, 0u);
  EXPECT_EQ(shed, run.service_shed);
  EXPECT_GT(run.phases[1].shed, run.phases[0].shed);
}

TEST(ClientPopulationTest, SameSeedReproducesTheRunExactly) {
  const PopulationRun a = run_population(200, Arrival::kPoisson, 91);
  const PopulationRun b = run_population(200, Arrival::kPoisson, 91);
  EXPECT_EQ(a.peak_sessions, b.peak_sessions);
  EXPECT_EQ(a.service_shed, b.service_shed);
  for (std::size_t i = 0; i < ClientPopulation::kPhases; ++i) {
    EXPECT_EQ(a.phases[i].sessions, b.phases[i].sessions);
    EXPECT_EQ(a.phases[i].requests, b.phases[i].requests);
    EXPECT_EQ(a.phases[i].ok, b.phases[i].ok);
    EXPECT_EQ(a.phases[i].shed, b.phases[i].shed);
    EXPECT_EQ(a.phases[i].failed, b.phases[i].failed);
    EXPECT_EQ(a.phases[i].latency.count(), b.phases[i].latency.count());
    EXPECT_EQ(a.phases[i].latency.quantile(0.5), b.phases[i].latency.quantile(0.5));
    EXPECT_EQ(a.phases[i].latency.quantile(0.99), b.phases[i].latency.quantile(0.99));
  }
}

TEST(ClientPopulationTest, BurstyAndDiurnalArrivalsAlsoComplete) {
  for (Arrival arrival : {Arrival::kBursty, Arrival::kDiurnal}) {
    const PopulationRun run = run_population(150, arrival, 57);
    std::uint64_t sessions = 0;
    for (const auto& phase : run.phases) sessions += phase.sessions;
    EXPECT_EQ(sessions, 150u);
  }
}

TEST(ClientPopulationTest, NamesAreStable) {
  EXPECT_STREQ(aft::load::to_string(Arrival::kPoisson), "poisson");
  EXPECT_STREQ(aft::load::to_string(Arrival::kBursty), "bursty");
  EXPECT_STREQ(aft::load::to_string(Arrival::kDiurnal), "diurnal");
  EXPECT_STREQ(ClientPopulation::phase_name(0), "warm");
  EXPECT_STREQ(ClientPopulation::phase_name(1), "overload");
  EXPECT_STREQ(ClientPopulation::phase_name(2), "recovery");
}

}  // namespace
