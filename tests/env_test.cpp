// Tests for behavioural platform self-tests (the Therac introspection
// treatment) and the assumption web.
#include <gtest/gtest.h>

#include "core/web.hpp"
#include "env/platform.hpp"

namespace {

using namespace aft::env;

PlatformFeatures all_features() {
  return PlatformFeatures{.hardware_interlocks = true,
                          .exception_trapping = true,
                          .watchdog_timer = true,
                          .ecc_reporting = true};
}

// --- PlatformUnderTest / run_self_test ---------------------------------------------

TEST(SelfTestTest, HonestFullPlatformIsSafe) {
  PlatformUnderTest p("therac-20", all_features(), all_features());
  const SelfTestReport report = run_self_test(p);
  EXPECT_TRUE(report.safe_to_operate());
  EXPECT_EQ(report.results.size(), 4u);
  for (const ProbeResult& r : report.results) {
    EXPECT_TRUE(r.probed);
    EXPECT_FALSE(r.broken_promise());
  }
  EXPECT_EQ(p.interlock_trips(), 1u);  // the probe really exercised the relay
}

TEST(SelfTestTest, TheracTwentyFiveLieIsCaught) {
  // The Therac-25 scenario: the spec (inherited expectations) advertises
  // interlocks and trapping; the actual hardware dropped them.
  PlatformFeatures advertised = all_features();
  PlatformFeatures actual = all_features();
  actual.hardware_interlocks = false;
  actual.exception_trapping = false;
  PlatformUnderTest p("therac-25", advertised, actual);

  const SelfTestReport report = run_self_test(p);
  EXPECT_FALSE(report.safe_to_operate());
  const auto broken = report.broken_promises();
  ASSERT_EQ(broken.size(), 2u);
  EXPECT_EQ(broken[0].feature, "hardware-interlocks");
  EXPECT_EQ(broken[1].feature, "exception-trapping");
}

TEST(SelfTestTest, UndocumentedFeatureIsNotABlocker) {
  PlatformFeatures advertised{};  // promises nothing
  PlatformUnderTest p("modest", advertised, all_features());
  const SelfTestReport report = run_self_test(p);
  EXPECT_TRUE(report.safe_to_operate());
  int undocumented = 0;
  for (const ProbeResult& r : report.results) {
    if (r.undocumented()) ++undocumented;
  }
  EXPECT_EQ(undocumented, 4);
}

TEST(SelfTestTest, PublishesProbedTruthNotTheSpec) {
  PlatformFeatures advertised = all_features();
  PlatformFeatures actual{};  // delivers nothing
  PlatformUnderTest p("vaporware", advertised, actual);
  aft::core::Context ctx;
  const SelfTestReport report = run_self_test(p, &ctx);
  EXPECT_FALSE(report.safe_to_operate());
  // Downstream assumptions see the probed reality.
  EXPECT_EQ(ctx.get<bool>("platform.hardware-interlocks"), false);
  EXPECT_EQ(ctx.get<bool>("platform.exception-trapping"), false);
  EXPECT_EQ(ctx.get<bool>("platform.watchdog-timer"), false);
  EXPECT_EQ(ctx.get<bool>("platform.ecc-reporting"), false);
}

TEST(SelfTestTest, BehaviouralCountersAccumulate) {
  PlatformUnderTest p("p", all_features(), all_features());
  (void)run_self_test(p);
  (void)run_self_test(p);
  EXPECT_EQ(p.interlock_trips(), 2u);
  EXPECT_EQ(p.traps(), 2u);
  EXPECT_EQ(p.resets(), 2u);
}

// --- AssumptionWeb ---------------------------------------------------------------

using aft::core::AssumptionWeb;

TEST(WebTest, BasicStructure) {
  AssumptionWeb web;
  web.add_dependency("hw.memory.f1", "mem.method.M1-adequate");
  web.add_dependency("mem.method.M1-adequate", "app.telemetry-durable");
  web.add_dependency("env.transients-only", "ftpat.redoing-adequate");
  EXPECT_EQ(web.size(), 5u);
  EXPECT_TRUE(web.contains("app.telemetry-durable"));
  EXPECT_EQ(web.dependents_of("hw.memory.f1"),
            std::vector<std::string>{"mem.method.M1-adequate"});
  EXPECT_EQ(web.premises_of("mem.method.M1-adequate"),
            std::vector<std::string>{"hw.memory.f1"});
}

TEST(WebTest, SuspectsAreTransitive) {
  AssumptionWeb web;
  web.add_dependency("a", "b");
  web.add_dependency("b", "c");
  web.add_dependency("b", "d");
  web.add_dependency("x", "d");  // d has a second, independent premise
  const auto suspects = web.suspects_of("a");
  EXPECT_EQ(suspects, (std::vector<std::string>{"b", "c", "d"}));
  EXPECT_EQ(web.suspects_of("x"), std::vector<std::string>{"d"});
  EXPECT_TRUE(web.suspects_of("c").empty());
}

TEST(WebTest, SelfAndCyclicDependenciesRejected) {
  AssumptionWeb web;
  EXPECT_THROW(web.add_dependency("a", "a"), std::invalid_argument);
  web.add_dependency("a", "b");
  web.add_dependency("b", "c");
  EXPECT_THROW(web.add_dependency("c", "a"), std::invalid_argument);
  // The failed insertion must not have corrupted the web.
  EXPECT_TRUE(web.premises_of("a").empty());
}

TEST(WebTest, RootsAndIsolated) {
  AssumptionWeb web;
  web.add_dependency("a", "b");
  web.add("loner");
  const auto roots = web.roots();
  EXPECT_EQ(roots, (std::vector<std::string>{"a", "loner"}));
  EXPECT_EQ(web.isolated(), std::vector<std::string>{"loner"});
}

TEST(WebTest, UnknownNodesAreHarmless) {
  AssumptionWeb web;
  EXPECT_FALSE(web.contains("ghost"));
  EXPECT_TRUE(web.dependents_of("ghost").empty());
  EXPECT_TRUE(web.suspects_of("ghost").empty());
}

TEST(WebTest, DiamondSuspectsCountedOnce) {
  AssumptionWeb web;
  web.add_dependency("root", "l");
  web.add_dependency("root", "r");
  web.add_dependency("l", "sink");
  web.add_dependency("r", "sink");
  const auto suspects = web.suspects_of("root");
  EXPECT_EQ(suspects, (std::vector<std::string>{"l", "r", "sink"}));
}

TEST(WebTest, TheAriane4Web) {
  // The web the Ariane-4 software never wrote down: the OBC safety case
  // rested, transitively, on a trajectory envelope.
  AssumptionWeb web;
  web.add_dependency("traj.hv-below-32767", "sri.bh-conversion-safe");
  web.add_dependency("sri.bh-conversion-safe", "sri.no-operand-error");
  web.add_dependency("sri.no-operand-error", "irs.channel-availability");
  web.add_dependency("irs.channel-availability", "vehicle.guidance-available");
  const auto suspects = web.suspects_of("traj.hv-below-32767");
  EXPECT_EQ(suspects.size(), 4u);  // everything up to guidance is suspect
  EXPECT_NE(std::find(suspects.begin(), suspects.end(),
                      "vehicle.guidance-available"),
            suspects.end());
}

}  // namespace
