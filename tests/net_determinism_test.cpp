// Differential fault-matrix determinism for the network substrate: the same
// RPC campaign — a matrix of drop / duplicate / reorder / partition fault
// models — must produce byte-identical traces, byte-identical metrics JSON,
// and identical outcome counters whether it runs on 1 worker thread or 8.
// This is the net-layer counterpart of the campaign_test guarantees and the
// property the abl_retry_policy bench (and its CI byte-diff job) rely on.
#include <gtest/gtest.h>

#include <array>
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "net/breaker.hpp"
#include "net/endpoint.hpp"
#include "net/link.hpp"
#include "net/retry.hpp"
#include "obs/obs.hpp"
#include "sim/simulator.hpp"
#include "util/campaign.hpp"

namespace {

using aft::net::CallOptions;
using aft::net::CircuitBreaker;
using aft::net::Endpoint;
using aft::net::Link;
using aft::net::LinkFaults;
using aft::net::RpcResult;
using aft::net::RpcStatus;
using aft::sim::Simulator;

constexpr std::size_t kJobs = 10;
constexpr std::size_t kCallsPerJob = 25;

/// Outcome tallies of one job: ok, circuit-open, deadline-exceeded,
/// exhausted, wire attempts, stale responses.
using Outcome = std::array<std::uint64_t, 6>;

LinkFaults faults_for(std::size_t job) {
  LinkFaults faults;
  faults.latency = 3;
  faults.jitter = 2;
  switch (job % 5) {
    case 0: break;  // lossless baseline
    case 1: faults.drop = 0.2; break;
    case 2: faults.duplicate = 0.3; break;
    case 3: faults.reorder = 0.3; break;
    case 4: faults.drop = 0.05; break;  // + partition window, see below
  }
  return faults;
}

Outcome run_job(std::size_t job) {
  const std::uint64_t seed = 9000 + 17 * static_cast<std::uint64_t>(job);
  Simulator sim;
  const LinkFaults faults = faults_for(job);
  Link fwd(sim, "a->b", faults, seed);
  Link rev(sim, "b->a", faults, seed + 1);
  Endpoint client(sim, "client", seed + 2);
  Endpoint server(sim, "server", seed + 3);
  client.attach(rev, fwd);
  server.attach(fwd, rev);
  server.serve("echo", [](const std::string& request, std::string& response) {
    response = request;
    return true;
  });
  CircuitBreaker::Params breaker_params;
  breaker_params.cooldown = 40;
  CircuitBreaker breaker(sim, "to-server", breaker_params);

  CallOptions options;
  options.deadline = 15;
  options.retry.max_attempts = 3;
  options.retry.initial_backoff = 4;
  options.retry.jitter = 0.5;
  options.breaker = &breaker;

  Outcome out{};
  for (std::size_t k = 0; k < kCallsPerJob; ++k) {
    sim.schedule_at(
        20 * k, [cl = &client, opt = &options, out_ptr = &out] {
          cl->call("echo", "ping", *opt, [out_ptr](const RpcResult& r) {
            switch (r.status) {
              case RpcStatus::kOk: ++(*out_ptr)[0]; break;
              case RpcStatus::kCircuitOpen: ++(*out_ptr)[1]; break;
              case RpcStatus::kDeadlineExceeded: ++(*out_ptr)[2]; break;
              case RpcStatus::kExhausted: ++(*out_ptr)[3]; break;
              case RpcStatus::kRejected: break;  // no admission plane here
            }
          });
        });
  }
  if (job % 5 == 4) {
    sim.schedule_at(150, [link = &fwd] { link->partition(); });
    sim.schedule_at(320, [link = &fwd] { link->heal(); });
  }
  sim.run_all();
  out[4] = client.counters().attempts;
  out[5] = client.counters().stale_responses;
  return out;
}

struct CampaignOutput {
  std::string trace;
  std::string metrics;
  std::vector<Outcome> outcomes;
};

CampaignOutput run_matrix(unsigned threads) {
  CampaignOutput output;
  aft::obs::TraceSink sink;
  aft::obs::MetricsRegistry metrics;
  {
    const aft::obs::ScopedObs scope(&sink, &metrics);
    output.outcomes = aft::util::run_campaigns(
        kJobs, [](std::size_t job) { return run_job(job); }, threads);
  }
  output.trace = sink.jsonl();
  output.metrics = metrics.json();
  return output;
}

TEST(NetDeterminismTest, FaultMatrixIsByteIdenticalAcrossThreadCounts) {
  const CampaignOutput serial = run_matrix(1);
  const CampaignOutput parallel = run_matrix(8);

  ASSERT_EQ(serial.outcomes.size(), kJobs);
  EXPECT_EQ(parallel.outcomes, serial.outcomes);
  EXPECT_EQ(parallel.metrics, serial.metrics);
  EXPECT_EQ(parallel.trace, serial.trace);

  // Every job completed every call, one way or another.
  for (const Outcome& out : serial.outcomes) {
    EXPECT_EQ(out[0] + out[1] + out[2] + out[3], kCallsPerJob);
  }
  // The lossless baseline jobs succeed outright; the faulty environments
  // exercise the retry/breaker paths (some wire attempts beyond the calls).
  EXPECT_EQ(serial.outcomes[0][0], kCallsPerJob);
  // Retries happened: wire attempts exceed the calls that were admitted to
  // the wire at all (circuit-open rejections never send an attempt).
  std::uint64_t total_attempts = 0;
  std::uint64_t admitted_calls = 0;
  for (const Outcome& out : serial.outcomes) {
    total_attempts += out[4];
    admitted_calls += kCallsPerJob - out[1];
  }
  EXPECT_GT(total_attempts, admitted_calls);

#if !defined(AFT_OBS_DISABLED)
  // The merged campaign trace is non-trivial (per-job sinks were installed
  // and folded back in job-index order).
  EXPECT_NE(serial.trace.find("net.rpc"), std::string::npos);
  EXPECT_NE(serial.trace.find("net.link"), std::string::npos);
  EXPECT_NE(serial.metrics.find("net.rpc.calls"), std::string::npos);
#endif
}

TEST(NetDeterminismTest, RepeatedRunsReplayIdentically) {
  const CampaignOutput first = run_matrix(4);
  const CampaignOutput second = run_matrix(4);
  EXPECT_EQ(first.outcomes, second.outcomes);
  EXPECT_EQ(first.trace, second.trace);
  EXPECT_EQ(first.metrics, second.metrics);
}

}  // namespace
