// Unit tests for the util substrate: RNG, histogram, statistics, ring
// buffer, and text tables.
#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <cmath>
#include <cstdint>
#include <memory>
#include <set>
#include <stdexcept>
#include <vector>

#include "util/dheap.hpp"
#include "util/histogram.hpp"
#include "util/log_histogram.hpp"
#include "util/ring_buffer.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

namespace {

using aft::util::DHeap;
using aft::util::Histogram;
using aft::util::LogHistogram;
using aft::util::RingBuffer;
using aft::util::RunningStats;
using aft::util::SplitMix64;
using aft::util::TextTable;
using aft::util::Xoshiro256;

// --- RNG ------------------------------------------------------------------

TEST(SplitMix64Test, SameSeedSameStream) {
  SplitMix64 a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(SplitMix64Test, DifferentSeedsDiverge) {
  SplitMix64 a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next() == b.next()) ++equal;
  }
  EXPECT_EQ(equal, 0);
}

TEST(Xoshiro256Test, Deterministic) {
  Xoshiro256 a(7), b(7);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Xoshiro256Test, Uniform01InRange) {
  Xoshiro256 rng(99);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform01();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Xoshiro256Test, Uniform01MeanNearHalf) {
  Xoshiro256 rng(5);
  double sum = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.uniform01();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Xoshiro256Test, UniformIntRespectsBounds) {
  Xoshiro256 rng(11);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 2000; ++i) {
    const std::uint64_t v = rng.uniform_int(3, 9);
    EXPECT_GE(v, 3u);
    EXPECT_LE(v, 9u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7u);  // all values reachable
}

TEST(Xoshiro256Test, UniformIntSingleton) {
  Xoshiro256 rng(13);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.uniform_int(42, 42), 42u);
}

TEST(Xoshiro256Test, UniformIntPowerOfTwoMaskMatchesModulo) {
  // The power-of-two fast path masks instead of dividing; for draws below
  // the rejection limit (all but ~2^-56 of them at span 256) the mask and
  // the modulo give the same value, so both code paths must agree draw by
  // draw on a shared stream.
  Xoshiro256 fast(29);
  Xoshiro256 slow(29);
  for (int i = 0; i < 10000; ++i) {
    const std::uint64_t raw = slow.next();
    EXPECT_EQ(fast.uniform_int(0, 255), raw % 256);
  }
}

TEST(Xoshiro256Test, UniformIntPowerOfTwoUniformity) {
  // Chi-squared sanity over 16 buckets: 64 000 draws, expected 4 000 per
  // bucket.  With 15 degrees of freedom, chi2 > 60 has p < 3e-7 — a
  // deterministic seed keeps this from ever flaking.
  Xoshiro256 rng(37);
  constexpr int kBuckets = 16;
  constexpr int kDraws = 64000;
  std::array<int, kBuckets> counts{};
  for (int i = 0; i < kDraws; ++i) {
    counts[rng.uniform_int(0, kBuckets - 1)]++;
  }
  const double expected = static_cast<double>(kDraws) / kBuckets;
  double chi2 = 0.0;
  for (const int c : counts) {
    const double d = c - expected;
    chi2 += d * d / expected;
  }
  EXPECT_LT(chi2, 60.0);
  // Offset ranges exercise the `lo +` term of the fast path.
  for (int i = 0; i < 1000; ++i) {
    const std::uint64_t v = rng.uniform_int(100, 163);  // span 64
    EXPECT_GE(v, 100u);
    EXPECT_LE(v, 163u);
  }
}

TEST(Xoshiro256Test, BernoulliExtremes) {
  Xoshiro256 rng(17);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.bernoulli(0.0));
    EXPECT_TRUE(rng.bernoulli(1.0));
    EXPECT_FALSE(rng.bernoulli(-1.0));
    EXPECT_TRUE(rng.bernoulli(2.0));
  }
}

TEST(Xoshiro256Test, BernoulliFrequency) {
  Xoshiro256 rng(19);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    if (rng.bernoulli(0.3)) ++hits;
  }
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(Xoshiro256Test, JumpProducesDisjointStream) {
  Xoshiro256 a(23);
  Xoshiro256 b(23);
  b.jump();
  int equal = 0;
  for (int i = 0; i < 1000; ++i) {
    if (a.next() == b.next()) ++equal;
  }
  EXPECT_EQ(equal, 0);
}

// --- Histogram --------------------------------------------------------------

TEST(HistogramTest, EmptyBehaviour) {
  Histogram h;
  EXPECT_TRUE(h.empty());
  EXPECT_EQ(h.total(), 0u);
  EXPECT_EQ(h.count(3), 0u);
  EXPECT_DOUBLE_EQ(h.fraction(3), 0.0);
  EXPECT_EQ(h.mode(), 0);
}

TEST(HistogramTest, CountsAndFractions) {
  Histogram h;
  h.add(3, 90);
  h.add(5, 9);
  h.add(7);
  EXPECT_EQ(h.total(), 100u);
  EXPECT_EQ(h.count(3), 90u);
  EXPECT_DOUBLE_EQ(h.fraction(3), 0.9);
  EXPECT_DOUBLE_EQ(h.fraction(5), 0.09);
  EXPECT_DOUBLE_EQ(h.fraction(7), 0.01);
  EXPECT_EQ(h.mode(), 3);
}

TEST(HistogramTest, RenderLogScaleMentionsEveryBin) {
  Histogram h;
  h.add(3, 1000000);
  h.add(5, 100);
  h.add(9, 1);
  const std::string render = h.render_log_scale(40);
  EXPECT_NE(render.find("3\t"), std::string::npos);
  EXPECT_NE(render.find("5\t"), std::string::npos);
  EXPECT_NE(render.find("9\t"), std::string::npos);
  EXPECT_NE(render.find("1000000"), std::string::npos);
}

TEST(HistogramTest, SingletonBinRendersVisibleBar) {
  // Golden regression for the log-scale rescale: a bin with exactly one
  // sample used to map to log10(1) = 0 and render a zero-width bar,
  // indistinguishable from an empty bin — exactly the r=9 "visited once"
  // case of the Fig. 7 histogram.  With the log10(n)+1 scale every
  // non-empty bin gets at least one '#'.
  Histogram h;
  h.add(9, 1);
  const std::string render = h.render_log_scale(50);
  EXPECT_EQ(render, "9\t| " + std::string(50, '#') + "  1 (100%)\n");

  Histogram mixed;
  mixed.add(3, 1000000);
  mixed.add(9, 1);
  const std::string r2 = mixed.render_log_scale(49);
  // 49 * (log10(1)+1)/(log10(1e6)+1) = 49 * 1/7 = 7 hashes for the singleton.
  EXPECT_NE(r2.find("9\t| #######  1"), std::string::npos);
}

TEST(HistogramTest, LogScaleBarsMonotone) {
  Histogram h;
  h.add(1, 10);
  h.add(2, 100000);
  const std::string render = h.render_log_scale(60);
  // The larger bin must render a strictly longer bar.
  const auto line1_hashes = render.substr(0, render.find('\n'));
  const auto line2 = render.substr(render.find('\n') + 1);
  const auto count_hash = [](const std::string& s) {
    return std::count(s.begin(), s.end(), '#');
  };
  EXPECT_LT(count_hash(line1_hashes), count_hash(line2));
}

TEST(HistogramTest, RenderLogScaleRejectsNonPositiveWidth) {
  // Regression: a zero or negative width used to flow into the bar-length
  // arithmetic (where it underflowed or rendered garbage) instead of being
  // rejected at the API boundary.
  Histogram h;
  h.add(3, 10);
  EXPECT_THROW((void)h.render_log_scale(0), std::invalid_argument);
  EXPECT_THROW((void)h.render_log_scale(-7), std::invalid_argument);
  EXPECT_NO_THROW((void)h.render_log_scale(1));
}

// --- DHeap ------------------------------------------------------------------

TEST(DHeapTest, PopsInSortedOrder) {
  DHeap<int, int> heap;
  const std::array<int, 12> values{9, 3, 7, 3, 1, 12, 0, 5, 3, 8, 2, 11};
  for (int v : values) heap.push(v, v);
  EXPECT_EQ(heap.size(), values.size());
  std::vector<int> sorted(values.begin(), values.end());
  std::sort(sorted.begin(), sorted.end());
  for (int expected : sorted) {
    EXPECT_EQ(heap.top(), expected);
    EXPECT_EQ(heap.top_key(), expected);
    EXPECT_EQ(heap.pop(), expected);
  }
  EXPECT_TRUE(heap.empty());
}

TEST(DHeapTest, InterleavedPushPopAgainstSortedModel) {
  // Randomized differential check against a sorted-vector model, covering
  // the hole-based sift paths at many sizes (including the single-element
  // pop special case) and the freelist recycling of pool slots.
  DHeap<std::uint64_t, std::uint64_t> heap;
  std::vector<std::uint64_t> model;
  Xoshiro256 rng(99);
  for (int round = 0; round < 2000; ++round) {
    if (model.empty() || rng.uniform_int(0, 2) != 0) {
      const std::uint64_t v = rng.uniform_int(0, 50);
      heap.push(v, v);
      model.insert(std::upper_bound(model.begin(), model.end(), v), v);
    } else {
      ASSERT_EQ(heap.pop(), model.front());
      model.erase(model.begin());
    }
    ASSERT_EQ(heap.size(), model.size());
    if (!model.empty()) {
      ASSERT_EQ(heap.top(), model.front());
    }
  }
  while (!model.empty()) {
    EXPECT_EQ(heap.pop(), model.front());
    model.erase(model.begin());
  }
}

TEST(DHeapTest, MoveOnlyElementsAndClear) {
  struct Item {
    std::uint64_t tag = 0;
    std::unique_ptr<int> payload;
  };
  DHeap<Item, std::uint64_t> heap;
  heap.reserve(8);
  for (std::uint64_t k : {5u, 1u, 3u}) {
    heap.push(k, Item{k, std::make_unique<int>(static_cast<int>(k * 10))});
  }
  const Item first = heap.pop();
  EXPECT_EQ(first.tag, 1u);
  EXPECT_EQ(*first.payload, 10);
  heap.clear();
  EXPECT_TRUE(heap.empty());
  EXPECT_EQ(heap.size(), 0u);
}

TEST(DHeapTest, ValueAndKeyMayDiffer) {
  // The value need not embed its key: the heap orders purely on the pushed
  // key, FIFO ties broken however the caller encodes them in the key.
  DHeap<std::string, std::pair<int, int>> heap;
  heap.push({2, 0}, "third");
  heap.push({1, 0}, "first");
  heap.push({1, 1}, "second");
  EXPECT_EQ(heap.pop(), "first");
  EXPECT_EQ(heap.pop(), "second");
  EXPECT_EQ(heap.pop(), "third");
}

// --- RunningStats -----------------------------------------------------------

TEST(RunningStatsTest, KnownValues) {
  RunningStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.variance(), 4.0);
  EXPECT_DOUBLE_EQ(s.stddev(), 2.0);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(RunningStatsTest, EmptyIsZero) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(RunningStatsTest, SingleSampleVarianceZero) {
  RunningStats s;
  s.add(42.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.mean(), 42.0);
}

TEST(RunningStatsTest, MergeMatchesSequential) {
  RunningStats all, left, right;
  Xoshiro256 rng(31);
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.uniform01() * 10;
    all.add(x);
    (i < 400 ? left : right).add(x);
  }
  left.merge(right);
  EXPECT_EQ(left.count(), all.count());
  EXPECT_NEAR(left.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(left.variance(), all.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(left.min(), all.min());
  EXPECT_DOUBLE_EQ(left.max(), all.max());
}

TEST(RunningStatsTest, MergeSingleSampleEachSide) {
  RunningStats a, b;
  a.add(1.0);
  b.add(3.0);
  a.merge(b);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_DOUBLE_EQ(a.mean(), 2.0);
  EXPECT_DOUBLE_EQ(a.variance(), 1.0);  // population variance of {1,3}
  EXPECT_DOUBLE_EQ(a.min(), 1.0);
  EXPECT_DOUBLE_EQ(a.max(), 3.0);
}

TEST(RunningStatsTest, MergeWithEmpty) {
  RunningStats a, b;
  a.add(1.0);
  a.add(3.0);
  a.merge(b);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_DOUBLE_EQ(a.mean(), 2.0);
  b.merge(a);
  EXPECT_EQ(b.count(), 2u);
  EXPECT_DOUBLE_EQ(b.mean(), 2.0);
}

// --- RingBuffer --------------------------------------------------------------

TEST(RingBufferTest, RejectsZeroCapacity) {
  EXPECT_THROW(RingBuffer<int>(0), std::invalid_argument);
}

TEST(RingBufferTest, FillsAndEvicts) {
  RingBuffer<int> rb(3);
  EXPECT_TRUE(rb.empty());
  rb.push(1);
  rb.push(2);
  rb.push(3);
  EXPECT_TRUE(rb.full());
  rb.push(4);  // evicts 1
  EXPECT_EQ(rb.size(), 3u);
  EXPECT_EQ(rb.recent(0), 4);
  EXPECT_EQ(rb.recent(1), 3);
  EXPECT_EQ(rb.recent(2), 2);
  EXPECT_EQ(rb.oldest(), 2);
}

TEST(RingBufferTest, RecentOutOfRangeThrows) {
  RingBuffer<int> rb(2);
  rb.push(1);
  EXPECT_THROW((void)rb.recent(1), std::out_of_range);
}

TEST(RingBufferTest, ClearResets) {
  RingBuffer<int> rb(2);
  rb.push(1);
  rb.push(2);
  rb.clear();
  EXPECT_TRUE(rb.empty());
  rb.push(9);
  EXPECT_EQ(rb.recent(0), 9);
}

// --- TextTable ----------------------------------------------------------------

TEST(TextTableTest, RendersAlignedColumns) {
  TextTable t;
  t.header({"name", "value"});
  t.row({"alpha", "1"});
  t.row({"b", "22222"});
  const std::string s = t.render();
  EXPECT_NE(s.find("name"), std::string::npos);
  EXPECT_NE(s.find("alpha"), std::string::npos);
  EXPECT_NE(s.find("22222"), std::string::npos);
  EXPECT_NE(s.find("---"), std::string::npos);
}

TEST(TextTableTest, RowWidthMismatchThrows) {
  TextTable t;
  t.header({"a", "b"});
  EXPECT_THROW(t.row({"only-one"}), std::invalid_argument);
}

TEST(TextTableTest, FmtPrecision) {
  EXPECT_EQ(aft::util::fmt(3.14159, 2), "3.14");
  EXPECT_EQ(aft::util::fmt(1.0, 0), "1");
}

// --- LogHistogram --------------------------------------------------------------

/// Same rank rule quantile() documents: the ceil(p*n)-th smallest sample,
/// clamped to [1, n].
std::uint64_t sorted_reference(const std::vector<std::uint64_t>& sorted,
                               double p) {
  std::uint64_t rank =
      p <= 0.0 ? 1
               : static_cast<std::uint64_t>(
                     std::ceil(p * static_cast<double>(sorted.size())));
  rank = std::clamp<std::uint64_t>(rank, 1, sorted.size());
  return sorted[rank - 1];
}

TEST(LogHistogramTest, EmptyReportsZeroEverywhere) {
  LogHistogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.sum(), 0u);
  EXPECT_EQ(h.min(), 0u);
  EXPECT_EQ(h.max(), 0u);
  EXPECT_EQ(h.quantile(0.5), 0u);
  EXPECT_EQ(h.quantile(1.0), 0u);
}

TEST(LogHistogramTest, SingletonEveryQuantileIsTheSample) {
  for (const std::uint64_t v : {std::uint64_t{0}, std::uint64_t{1},
                                std::uint64_t{31}, std::uint64_t{32},
                                std::uint64_t{7777},
                                std::uint64_t{1} << 40}) {
    LogHistogram h;
    h.add(v);
    for (const double p : {0.0, 0.5, 0.99, 0.999, 1.0}) {
      EXPECT_EQ(h.quantile(p), v) << "v=" << v << " p=" << p;
    }
    EXPECT_EQ(h.min(), v);
    EXPECT_EQ(h.max(), v);
    EXPECT_EQ(h.sum(), v);
  }
}

TEST(LogHistogramTest, AllEqualStreamIsExactAtEveryQuantile) {
  LogHistogram h;
  for (int i = 0; i < 1000; ++i) h.add(std::uint64_t{12345});
  for (const double p : {0.0, 0.25, 0.5, 0.9, 0.99, 0.999, 1.0}) {
    EXPECT_EQ(h.quantile(p), 12345u) << "p=" << p;
  }
}

TEST(LogHistogramTest, BucketMapTilesTheDomain) {
  for (std::size_t i = 0; i < LogHistogram::kBuckets; ++i) {
    const std::uint64_t lo = LogHistogram::bucket_lower(i);
    const std::uint64_t hi = LogHistogram::bucket_upper(i);
    EXPECT_LE(lo, hi) << "bucket " << i;
    EXPECT_EQ(LogHistogram::bucket_index(lo), i);
    EXPECT_EQ(LogHistogram::bucket_index(hi), i);
    if (i > 0) {
      EXPECT_EQ(LogHistogram::bucket_upper(i - 1) + 1, lo)
          << "seam before bucket " << i;
    }
  }
}

TEST(LogHistogramTest, BoundarySamplesLandInTheirOwnBucket) {
  // One sample exactly on each bucket boundary of the first few majors must
  // be recoverable as its own quantile within the 1/32 error bound.
  LogHistogram h;
  std::vector<std::uint64_t> values;
  for (std::size_t i = 0; i < 8 * LogHistogram::kSubBuckets; ++i) {
    values.push_back(LogHistogram::bucket_lower(i));
    h.add(values.back());
  }
  std::sort(values.begin(), values.end());
  for (const double p : {0.1, 0.5, 0.9, 1.0}) {
    const std::uint64_t ref = sorted_reference(values, p);
    const std::uint64_t got = h.quantile(p);
    EXPECT_GE(got, ref) << "p=" << p;
    EXPECT_LE(got, ref + ref / LogHistogram::kSubBuckets + 1) << "p=" << p;
  }
}

TEST(LogHistogramTest, QuantileWithinBoundOfSortedReference) {
  Xoshiro256 rng(4242);
  for (const std::size_t n : {std::size_t{1}, std::size_t{7}, std::size_t{100},
                              std::size_t{5000}}) {
    LogHistogram h;
    std::vector<std::uint64_t> values;
    values.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
      // Mix magnitudes: small exact-range values through ~2^44.
      const std::uint64_t v = rng.next() >> (20 + rng.next() % 44);
      values.push_back(v);
      h.add(v);
    }
    std::sort(values.begin(), values.end());
    for (const double p : {0.0, 0.25, 0.5, 0.9, 0.99, 0.999, 1.0}) {
      const std::uint64_t ref = sorted_reference(values, p);
      const std::uint64_t got = h.quantile(p);
      // quantile() is conservative: >= the true order statistic, and over
      // by at most one sub-bucket width (<= ref/32), clamped to max().
      EXPECT_GE(got, ref) << "n=" << n << " p=" << p;
      EXPECT_LE(got, ref + ref / LogHistogram::kSubBuckets + 1)
          << "n=" << n << " p=" << p;
      EXPECT_LE(got, h.max());
    }
  }
}

TEST(LogHistogramTest, MergeBitIdenticalToSequentialAdd) {
  Xoshiro256 rng(909);
  std::vector<std::uint64_t> stream;
  for (int i = 0; i < 4000; ++i) stream.push_back(rng.next() >> (rng.next() % 50));

  LogHistogram sequential;
  for (const std::uint64_t v : stream) sequential.add(v);

  // Any chunking and any merge order must reproduce the sequential result
  // exactly (operator== compares every bucket).
  for (const std::size_t chunks : {std::size_t{2}, std::size_t{3},
                                   std::size_t{8}}) {
    std::vector<LogHistogram> parts(chunks);
    for (std::size_t i = 0; i < stream.size(); ++i) {
      parts[i % chunks].add(stream[i]);
    }
    LogHistogram forward;
    for (const LogHistogram& part : parts) forward.merge(part);
    LogHistogram backward;
    for (std::size_t i = chunks; i-- > 0;) backward.merge(parts[i]);
    EXPECT_TRUE(forward == sequential) << "chunks=" << chunks;
    EXPECT_TRUE(backward == sequential) << "chunks=" << chunks;
  }
}

TEST(LogHistogramTest, MergeWithEmptyIsIdentity) {
  LogHistogram h;
  h.add(std::uint64_t{17});
  LogHistogram empty;
  LogHistogram copy = h;
  copy.merge(empty);
  EXPECT_TRUE(copy == h);
  empty.merge(h);
  EXPECT_TRUE(empty == h);
}

TEST(LogHistogramTest, DoubleClampEdges) {
  EXPECT_EQ(LogHistogram::clamp(std::nan("")), 0u);
  EXPECT_EQ(LogHistogram::clamp(-3.0), 0u);
  EXPECT_EQ(LogHistogram::clamp(0.0), 0u);
  EXPECT_EQ(LogHistogram::clamp(0.4), 0u);
  EXPECT_EQ(LogHistogram::clamp(0.5), 1u);
  EXPECT_EQ(LogHistogram::clamp(7.0), 7u);
  EXPECT_EQ(LogHistogram::clamp(1e30), ~std::uint64_t{0});
  LogHistogram h;
  h.add(2.49);
  EXPECT_EQ(h.max(), 2u);
}

TEST(LogHistogramTest, ResetClearsEverything) {
  LogHistogram h;
  h.add(std::uint64_t{99});
  h.reset();
  EXPECT_TRUE(h == LogHistogram{});
}

}  // namespace
