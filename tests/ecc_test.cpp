// Property tests for the Hamming SEC-DED (72,64) code: exhaustive
// single-bit correction, double-bit detection, and round-trip integrity.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "mem/ecc.hpp"
#include "util/rng.hpp"

namespace {

using aft::hw::Word72;
using aft::hw::flip_bit;
using aft::mem::EccStatus;
using aft::mem::ecc_decode;
using aft::mem::ecc_encode;
using aft::util::Xoshiro256;

TEST(EccTest, CleanRoundTrip) {
  for (const std::uint64_t data :
       {std::uint64_t{0}, std::uint64_t{1}, ~std::uint64_t{0},
        std::uint64_t{0xDEADBEEFCAFEBABE}, std::uint64_t{0x5555555555555555},
        std::uint64_t{0xAAAAAAAAAAAAAAAA}}) {
    const Word72 w = ecc_encode(data);
    const auto dec = ecc_decode(w);
    EXPECT_EQ(dec.status, EccStatus::kClean);
    EXPECT_EQ(dec.data, data);
  }
}

TEST(EccTest, RandomRoundTrip) {
  Xoshiro256 rng(1);
  for (int i = 0; i < 1000; ++i) {
    const std::uint64_t data = rng.next();
    const auto dec = ecc_decode(ecc_encode(data));
    ASSERT_EQ(dec.status, EccStatus::kClean);
    ASSERT_EQ(dec.data, data);
  }
}

/// Exhaustive single-bit property, parameterized over all 72 bit positions.
class EccSingleBitTest : public ::testing::TestWithParam<unsigned> {};

TEST_P(EccSingleBitTest, EverySingleFlipIsCorrected) {
  const unsigned bit = GetParam();
  Xoshiro256 rng(bit);
  for (int i = 0; i < 50; ++i) {
    const std::uint64_t data = rng.next();
    Word72 w = ecc_encode(data);
    flip_bit(w, bit);
    const auto dec = ecc_decode(w);
    ASSERT_EQ(dec.status, EccStatus::kCorrectedSingle)
        << "bit " << bit << " iteration " << i;
    ASSERT_EQ(dec.data, data);
    // Repaired codeword must decode clean.
    const auto again = ecc_decode(dec.repaired);
    ASSERT_EQ(again.status, EccStatus::kClean);
    ASSERT_EQ(again.data, data);
  }
}

INSTANTIATE_TEST_SUITE_P(AllBits, EccSingleBitTest, ::testing::Range(0u, 72u));

TEST(EccTest, AllDoubleFlipsDetected) {
  // Exhaustive over all C(72,2) = 2556 bit pairs, one random word each.
  Xoshiro256 rng(7);
  for (unsigned b1 = 0; b1 < 72; ++b1) {
    for (unsigned b2 = b1 + 1; b2 < 72; ++b2) {
      const std::uint64_t data = rng.next();
      Word72 w = ecc_encode(data);
      flip_bit(w, b1);
      flip_bit(w, b2);
      const auto dec = ecc_decode(w);
      ASSERT_EQ(dec.status, EccStatus::kDetectedDouble)
          << "bits " << b1 << "," << b2;
    }
  }
}

TEST(EccTest, TripleFlipsNeverSilentlyCleanOnSamples) {
  // Triple errors exceed SEC-DED guarantees (they may alias to a wrong
  // single-bit "correction"), but they must never decode as kClean with the
  // original data intact AND must never return clean status at all, since
  // odd-weight errors always trip the overall parity.
  Xoshiro256 rng(11);
  for (int i = 0; i < 2000; ++i) {
    const std::uint64_t data = rng.next();
    Word72 w = ecc_encode(data);
    unsigned bits[3];
    bits[0] = static_cast<unsigned>(rng.uniform_int(0, 71));
    do {
      bits[1] = static_cast<unsigned>(rng.uniform_int(0, 71));
    } while (bits[1] == bits[0]);
    do {
      bits[2] = static_cast<unsigned>(rng.uniform_int(0, 71));
    } while (bits[2] == bits[0] || bits[2] == bits[1]);
    for (unsigned b : bits) flip_bit(w, b);
    const auto dec = ecc_decode(w);
    ASSERT_NE(dec.status, EccStatus::kClean);
  }
}

TEST(EccTest, CheckBitsDifferForDifferentData) {
  // Sanity: the code actually uses the check byte.
  const Word72 a = ecc_encode(0x01);
  const Word72 b = ecc_encode(0x02);
  EXPECT_NE(a, b);
  EXPECT_NE(ecc_encode(0).check | ecc_encode(~std::uint64_t{0}).check, 0);
}

TEST(EccTest, ZeroCodewordIsCleanZero) {
  // ecc_encode(0) must be all-zero (linear code): decode of all-zero word.
  const auto dec = ecc_decode(Word72{});
  EXPECT_EQ(dec.status, EccStatus::kClean);
  EXPECT_EQ(dec.data, 0u);
}

// ---------------------------------------------------------------------------
// Differential suite: the mask kernel against the retained bit-loop
// reference (ecc_encode_ref/ecc_decode_ref).  Both implementations must be
// indistinguishable on every codeword the fault model can produce.
// ---------------------------------------------------------------------------

using aft::mem::ecc_decode_ref;
using aft::mem::ecc_encode_ref;

void expect_same_decode(const Word72& w, const char* what) {
  const auto mask = ecc_decode(w);
  const auto ref = ecc_decode_ref(w);
  ASSERT_EQ(mask.status, ref.status) << what;
  if (mask.status != EccStatus::kDetectedDouble) {
    ASSERT_EQ(mask.data, ref.data) << what;
    ASSERT_EQ(mask.repaired, ref.repaired) << what;
  }
}

TEST(EccDifferentialTest, EncodeMatchesReference) {
  Xoshiro256 rng(101);
  for (const std::uint64_t data :
       {std::uint64_t{0}, std::uint64_t{1}, ~std::uint64_t{0},
        std::uint64_t{0xDEADBEEFCAFEBABE}}) {
    ASSERT_EQ(ecc_encode(data), ecc_encode_ref(data));
  }
  for (int i = 0; i < 5000; ++i) {
    const std::uint64_t data = rng.next();
    ASSERT_EQ(ecc_encode(data), ecc_encode_ref(data)) << "word " << i;
  }
}

TEST(EccDifferentialTest, SingleFlipSweepAgreesAndCorrects) {
  // All 72 single-bit flips over a set of random words: both kernels must
  // return kCorrectedSingle with the original data, and agree bit-for-bit.
  Xoshiro256 rng(202);
  for (int i = 0; i < 8; ++i) {
    const std::uint64_t data = rng.next();
    const Word72 clean = ecc_encode(data);
    for (unsigned bit = 0; bit < 72; ++bit) {
      Word72 w = clean;
      flip_bit(w, bit);
      const auto mask = ecc_decode(w);
      ASSERT_EQ(mask.status, EccStatus::kCorrectedSingle) << "bit " << bit;
      ASSERT_EQ(mask.data, data) << "bit " << bit;
      ASSERT_EQ(mask.repaired, clean) << "bit " << bit;
      expect_same_decode(w, "single flip");
    }
  }
}

TEST(EccDifferentialTest, DoubleFlipSweepAgreesAndDetects) {
  // All C(72,2) = 2556 double-bit flips over a set of random words: both
  // kernels must return kDetectedDouble for every pair.
  Xoshiro256 rng(303);
  for (int i = 0; i < 4; ++i) {
    const std::uint64_t data = rng.next();
    const Word72 clean = ecc_encode(data);
    for (unsigned b1 = 0; b1 < 72; ++b1) {
      for (unsigned b2 = b1 + 1; b2 < 72; ++b2) {
        Word72 w = clean;
        flip_bit(w, b1);
        flip_bit(w, b2);
        const auto mask = ecc_decode(w);
        ASSERT_EQ(mask.status, EccStatus::kDetectedDouble)
            << "bits " << b1 << "," << b2;
        ASSERT_EQ(ecc_decode_ref(w).status, EccStatus::kDetectedDouble)
            << "bits " << b1 << "," << b2;
      }
    }
  }
}

TEST(EccDifferentialTest, ArbitraryCorruptionAgrees) {
  // Beyond the SEC-DED hypothesis (0..6 flips, including aliasing triples):
  // whatever each kernel decides, they must decide it identically.
  Xoshiro256 rng(404);
  for (int i = 0; i < 4000; ++i) {
    Word72 w = ecc_encode(rng.next());
    const auto flips = rng.uniform_int(0, 6);
    for (std::uint64_t f = 0; f < flips; ++f) {
      flip_bit(w, static_cast<unsigned>(rng.uniform_int(0, 71)));
    }
    expect_same_decode(w, "random corruption");
  }
}

TEST(EccDifferentialTest, RandomRawWordsAgree) {
  // Raw 72-bit patterns that were never produced by the encoder (e.g. after
  // a latch-up wipes a device mid-word) must also decode identically.
  Xoshiro256 rng(505);
  for (int i = 0; i < 4000; ++i) {
    Word72 w{rng.next(), static_cast<std::uint8_t>(rng.next() & 0xFF)};
    expect_same_decode(w, "raw word");
  }
}

// ---------------------------------------------------------------------------
// Bit-sliced batch kernel: slice/unslice round trips, batch-vs-scalar
// differentials, per-word verdicts for mixed batches, and dispatched vs
// portable agreement.  (When the binary was built with AFT_FORCE_PORTABLE
// the dispatched path *is* the portable one and the agreement tests become
// self-checks — still valid, just not independent.)
// ---------------------------------------------------------------------------

using aft::mem::EccBatchCounts;
using aft::mem::EccBlock;
using aft::mem::ecc_decode_batch;
using aft::mem::ecc_decode_batch_portable;
using aft::mem::ecc_encode_batch;
using aft::mem::ecc_encode_batch_portable;
using aft::mem::ecc_slice;
using aft::mem::ecc_unslice;
using aft::mem::kEccBatchLanes;

std::vector<Word72> random_codewords(std::size_t n, std::uint64_t seed) {
  Xoshiro256 rng(seed);
  std::vector<Word72> out(n);
  for (auto& w : out) w = ecc_encode(rng.next());
  return out;
}

TEST(EccSliceTest, SliceMatchesNaivePerBitTranspose) {
  Xoshiro256 rng(606);
  std::vector<Word72> words(kEccBatchLanes);
  for (auto& w : words) {
    w = Word72{rng.next(), static_cast<std::uint8_t>(rng.next() & 0xFF)};
  }
  EccBlock block{};
  ecc_slice(words.data(), words.size(), block);
  for (unsigned b = 0; b < 72; ++b) {
    std::uint64_t expect = 0;
    for (unsigned i = 0; i < kEccBatchLanes; ++i) {
      if (aft::hw::get_bit(words[i], b)) expect |= std::uint64_t{1} << i;
    }
    ASSERT_EQ(block.plane[b], expect) << "plane " << b;
  }
}

TEST(EccSliceTest, SliceUnsliceIsIdentityAtEveryAlignment) {
  // Every partial-tail size 1..64, plus the full block: the first n words
  // must round-trip exactly and the pad lanes must slice as zero (the
  // all-zero word is itself a valid clean codeword, which is what makes
  // zero-padding safe for the batch drivers).
  Xoshiro256 rng(707);
  for (std::size_t n = 1; n <= kEccBatchLanes; ++n) {
    std::vector<Word72> words(n);
    for (auto& w : words) {
      w = Word72{rng.next(), static_cast<std::uint8_t>(rng.next() & 0xFF)};
    }
    EccBlock block{};
    ecc_slice(words.data(), n, block);
    std::vector<Word72> back(n, Word72{~std::uint64_t{0}, 0xFF});
    ecc_unslice(block, n, back.data());
    for (std::size_t i = 0; i < n; ++i) {
      ASSERT_EQ(back[i], words[i]) << "n=" << n << " word " << i;
    }
    if (n < kEccBatchLanes) {
      for (unsigned b = 0; b < 72; ++b) {
        ASSERT_EQ(block.plane[b] >> n, 0u) << "pad lanes not zero, plane " << b;
      }
    }
  }
}

TEST(EccBatchTest, EncodeMatchesScalarAtEveryAlignment) {
  // Sizes straddling the 64-word block and the 4-block SIMD superblock.
  Xoshiro256 rng(808);
  for (const std::size_t n : {std::size_t{1}, std::size_t{5}, std::size_t{63},
                              std::size_t{64}, std::size_t{65}, std::size_t{127},
                              std::size_t{128}, std::size_t{255}, std::size_t{256},
                              std::size_t{257}, std::size_t{300}}) {
    std::vector<std::uint64_t> data(n);
    for (auto& d : data) d = rng.next();
    std::vector<Word72> batch(n);
    std::vector<Word72> portable(n);
    ecc_encode_batch(data.data(), n, batch.data());
    ecc_encode_batch_portable(data.data(), n, portable.data());
    for (std::size_t i = 0; i < n; ++i) {
      ASSERT_EQ(batch[i], ecc_encode(data[i])) << "n=" << n << " word " << i;
      ASSERT_EQ(portable[i], batch[i]) << "n=" << n << " word " << i;
    }
  }
}

void expect_batch_matches_scalar(const std::vector<Word72>& words,
                                 const char* what) {
  const std::size_t n = words.size();
  std::vector<std::uint64_t> data(n);
  std::vector<EccStatus> status(n);
  std::vector<Word72> repaired(n);
  const EccBatchCounts counts =
      ecc_decode_batch(words.data(), n, data.data(), status.data(), repaired.data());
  std::uint64_t want_corrected = 0;
  std::uint64_t want_uncorrectable = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const auto want = ecc_decode(words[i]);
    ASSERT_EQ(status[i], want.status) << what << " word " << i;
    ASSERT_EQ(data[i], want.data) << what << " word " << i;
    ASSERT_EQ(repaired[i], want.repaired) << what << " word " << i;
    want_corrected += want.status == EccStatus::kCorrectedSingle ? 1 : 0;
    want_uncorrectable += want.status == EccStatus::kDetectedDouble ? 1 : 0;
  }
  ASSERT_EQ(counts.corrected, want_corrected) << what;
  ASSERT_EQ(counts.uncorrectable, want_uncorrectable) << what;

  // The portable entry point must agree with whatever the dispatcher chose.
  std::vector<std::uint64_t> pdata(n);
  std::vector<EccStatus> pstatus(n);
  std::vector<Word72> prepaired(n);
  const EccBatchCounts pcounts = ecc_decode_batch_portable(
      words.data(), n, pdata.data(), pstatus.data(), prepaired.data());
  ASSERT_EQ(pcounts.corrected, counts.corrected) << what;
  ASSERT_EQ(pcounts.uncorrectable, counts.uncorrectable) << what;
  for (std::size_t i = 0; i < n; ++i) {
    ASSERT_EQ(pstatus[i], status[i]) << what << " word " << i;
    ASSERT_EQ(pdata[i], data[i]) << what << " word " << i;
    ASSERT_EQ(prepaired[i], repaired[i]) << what << " word " << i;
  }
}

TEST(EccBatchTest, DecodeEverySingleFlipPositionInEverySlot) {
  // 288 words = 4.5 64-word blocks; word i carries a flip at bit i % 72, so
  // every bit position lands in every block slot residue and the tail.
  auto words = random_codewords(288, 909);
  for (std::size_t i = 0; i < words.size(); ++i) {
    aft::hw::flip_bit(words[i], static_cast<unsigned>(i % 72));
  }
  expect_batch_matches_scalar(words, "single-flip sweep");
}

TEST(EccBatchTest, MixedVerdictBatchIsPerWord) {
  // A batch holding clean, correctable, and uncorrectable words at once
  // must report each word's own verdict — the uncorrectable words get the
  // documented scalar shape (no data, empty repaired) without bleeding
  // into their neighbours' corrections.
  auto words = random_codewords(130, 1010);
  Xoshiro256 rng(1111);
  for (std::size_t i = 0; i < words.size(); ++i) {
    if (i % 3 == 1) {  // single flip -> correctable
      aft::hw::flip_bit(words[i], static_cast<unsigned>(rng.uniform_int(0, 71)));
    } else if (i % 3 == 2) {  // double flip -> uncorrectable
      const auto b1 = static_cast<unsigned>(rng.uniform_int(0, 71));
      const auto b2 = (b1 + 1 + static_cast<unsigned>(rng.uniform_int(0, 70))) % 72;
      aft::hw::flip_bit(words[i], b1);
      aft::hw::flip_bit(words[i], b2);
    }
  }
  expect_batch_matches_scalar(words, "mixed verdicts");

  // Spot-check the documented uncorrectable shape directly.
  std::vector<std::uint64_t> data(words.size());
  std::vector<EccStatus> status(words.size());
  std::vector<Word72> repaired(words.size());
  ecc_decode_batch(words.data(), words.size(), data.data(), status.data(),
                   repaired.data());
  for (std::size_t i = 2; i < words.size(); i += 3) {
    ASSERT_EQ(status[i], EccStatus::kDetectedDouble) << "word " << i;
    ASSERT_EQ(data[i], 0u) << "word " << i;
    ASSERT_EQ(repaired[i], Word72{}) << "word " << i;
  }
}

TEST(EccBatchTest, ArbitraryCorruptionAgreesWithScalar) {
  Xoshiro256 rng(1212);
  for (int round = 0; round < 20; ++round) {
    const auto n = static_cast<std::size_t>(rng.uniform_int(1, 320));
    std::vector<Word72> words(n);
    for (auto& w : words) {
      w = ecc_encode(rng.next());
      const auto flips = rng.uniform_int(0, 4);
      for (std::uint64_t f = 0; f < flips; ++f) {
        aft::hw::flip_bit(w, static_cast<unsigned>(rng.uniform_int(0, 71)));
      }
    }
    expect_batch_matches_scalar(words, "random corruption batch");
  }
}

TEST(EccBatchTest, NullRepairedOutIsAccepted) {
  auto words = random_codewords(100, 1313);
  aft::hw::flip_bit(words[10], 3);
  std::vector<std::uint64_t> data(words.size());
  std::vector<EccStatus> status(words.size());
  const EccBatchCounts counts = ecc_decode_batch(words.data(), words.size(),
                                                 data.data(), status.data(),
                                                 nullptr);
  EXPECT_EQ(counts.corrected, 1u);
  EXPECT_EQ(counts.uncorrectable, 0u);
  EXPECT_EQ(status[10], EccStatus::kCorrectedSingle);
}

}  // namespace
