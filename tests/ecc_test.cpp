// Property tests for the Hamming SEC-DED (72,64) code: exhaustive
// single-bit correction, double-bit detection, and round-trip integrity.
#include <gtest/gtest.h>

#include "mem/ecc.hpp"
#include "util/rng.hpp"

namespace {

using aft::hw::Word72;
using aft::hw::flip_bit;
using aft::mem::EccStatus;
using aft::mem::ecc_decode;
using aft::mem::ecc_encode;
using aft::util::Xoshiro256;

TEST(EccTest, CleanRoundTrip) {
  for (const std::uint64_t data :
       {std::uint64_t{0}, std::uint64_t{1}, ~std::uint64_t{0},
        std::uint64_t{0xDEADBEEFCAFEBABE}, std::uint64_t{0x5555555555555555},
        std::uint64_t{0xAAAAAAAAAAAAAAAA}}) {
    const Word72 w = ecc_encode(data);
    const auto dec = ecc_decode(w);
    EXPECT_EQ(dec.status, EccStatus::kClean);
    EXPECT_EQ(dec.data, data);
  }
}

TEST(EccTest, RandomRoundTrip) {
  Xoshiro256 rng(1);
  for (int i = 0; i < 1000; ++i) {
    const std::uint64_t data = rng.next();
    const auto dec = ecc_decode(ecc_encode(data));
    ASSERT_EQ(dec.status, EccStatus::kClean);
    ASSERT_EQ(dec.data, data);
  }
}

/// Exhaustive single-bit property, parameterized over all 72 bit positions.
class EccSingleBitTest : public ::testing::TestWithParam<unsigned> {};

TEST_P(EccSingleBitTest, EverySingleFlipIsCorrected) {
  const unsigned bit = GetParam();
  Xoshiro256 rng(bit);
  for (int i = 0; i < 50; ++i) {
    const std::uint64_t data = rng.next();
    Word72 w = ecc_encode(data);
    flip_bit(w, bit);
    const auto dec = ecc_decode(w);
    ASSERT_EQ(dec.status, EccStatus::kCorrectedSingle)
        << "bit " << bit << " iteration " << i;
    ASSERT_EQ(dec.data, data);
    // Repaired codeword must decode clean.
    const auto again = ecc_decode(dec.repaired);
    ASSERT_EQ(again.status, EccStatus::kClean);
    ASSERT_EQ(again.data, data);
  }
}

INSTANTIATE_TEST_SUITE_P(AllBits, EccSingleBitTest, ::testing::Range(0u, 72u));

TEST(EccTest, AllDoubleFlipsDetected) {
  // Exhaustive over all C(72,2) = 2556 bit pairs, one random word each.
  Xoshiro256 rng(7);
  for (unsigned b1 = 0; b1 < 72; ++b1) {
    for (unsigned b2 = b1 + 1; b2 < 72; ++b2) {
      const std::uint64_t data = rng.next();
      Word72 w = ecc_encode(data);
      flip_bit(w, b1);
      flip_bit(w, b2);
      const auto dec = ecc_decode(w);
      ASSERT_EQ(dec.status, EccStatus::kDetectedDouble)
          << "bits " << b1 << "," << b2;
    }
  }
}

TEST(EccTest, TripleFlipsNeverSilentlyCleanOnSamples) {
  // Triple errors exceed SEC-DED guarantees (they may alias to a wrong
  // single-bit "correction"), but they must never decode as kClean with the
  // original data intact AND must never return clean status at all, since
  // odd-weight errors always trip the overall parity.
  Xoshiro256 rng(11);
  for (int i = 0; i < 2000; ++i) {
    const std::uint64_t data = rng.next();
    Word72 w = ecc_encode(data);
    unsigned bits[3];
    bits[0] = static_cast<unsigned>(rng.uniform_int(0, 71));
    do {
      bits[1] = static_cast<unsigned>(rng.uniform_int(0, 71));
    } while (bits[1] == bits[0]);
    do {
      bits[2] = static_cast<unsigned>(rng.uniform_int(0, 71));
    } while (bits[2] == bits[0] || bits[2] == bits[1]);
    for (unsigned b : bits) flip_bit(w, b);
    const auto dec = ecc_decode(w);
    ASSERT_NE(dec.status, EccStatus::kClean);
  }
}

TEST(EccTest, CheckBitsDifferForDifferentData) {
  // Sanity: the code actually uses the check byte.
  const Word72 a = ecc_encode(0x01);
  const Word72 b = ecc_encode(0x02);
  EXPECT_NE(a, b);
  EXPECT_NE(ecc_encode(0).check | ecc_encode(~std::uint64_t{0}).check, 0);
}

TEST(EccTest, ZeroCodewordIsCleanZero) {
  // ecc_encode(0) must be all-zero (linear code): decode of all-zero word.
  const auto dec = ecc_decode(Word72{});
  EXPECT_EQ(dec.status, EccStatus::kClean);
  EXPECT_EQ(dec.data, 0u);
}

// ---------------------------------------------------------------------------
// Differential suite: the mask kernel against the retained bit-loop
// reference (ecc_encode_ref/ecc_decode_ref).  Both implementations must be
// indistinguishable on every codeword the fault model can produce.
// ---------------------------------------------------------------------------

using aft::mem::ecc_decode_ref;
using aft::mem::ecc_encode_ref;

void expect_same_decode(const Word72& w, const char* what) {
  const auto mask = ecc_decode(w);
  const auto ref = ecc_decode_ref(w);
  ASSERT_EQ(mask.status, ref.status) << what;
  if (mask.status != EccStatus::kDetectedDouble) {
    ASSERT_EQ(mask.data, ref.data) << what;
    ASSERT_EQ(mask.repaired, ref.repaired) << what;
  }
}

TEST(EccDifferentialTest, EncodeMatchesReference) {
  Xoshiro256 rng(101);
  for (const std::uint64_t data :
       {std::uint64_t{0}, std::uint64_t{1}, ~std::uint64_t{0},
        std::uint64_t{0xDEADBEEFCAFEBABE}}) {
    ASSERT_EQ(ecc_encode(data), ecc_encode_ref(data));
  }
  for (int i = 0; i < 5000; ++i) {
    const std::uint64_t data = rng.next();
    ASSERT_EQ(ecc_encode(data), ecc_encode_ref(data)) << "word " << i;
  }
}

TEST(EccDifferentialTest, SingleFlipSweepAgreesAndCorrects) {
  // All 72 single-bit flips over a set of random words: both kernels must
  // return kCorrectedSingle with the original data, and agree bit-for-bit.
  Xoshiro256 rng(202);
  for (int i = 0; i < 8; ++i) {
    const std::uint64_t data = rng.next();
    const Word72 clean = ecc_encode(data);
    for (unsigned bit = 0; bit < 72; ++bit) {
      Word72 w = clean;
      flip_bit(w, bit);
      const auto mask = ecc_decode(w);
      ASSERT_EQ(mask.status, EccStatus::kCorrectedSingle) << "bit " << bit;
      ASSERT_EQ(mask.data, data) << "bit " << bit;
      ASSERT_EQ(mask.repaired, clean) << "bit " << bit;
      expect_same_decode(w, "single flip");
    }
  }
}

TEST(EccDifferentialTest, DoubleFlipSweepAgreesAndDetects) {
  // All C(72,2) = 2556 double-bit flips over a set of random words: both
  // kernels must return kDetectedDouble for every pair.
  Xoshiro256 rng(303);
  for (int i = 0; i < 4; ++i) {
    const std::uint64_t data = rng.next();
    const Word72 clean = ecc_encode(data);
    for (unsigned b1 = 0; b1 < 72; ++b1) {
      for (unsigned b2 = b1 + 1; b2 < 72; ++b2) {
        Word72 w = clean;
        flip_bit(w, b1);
        flip_bit(w, b2);
        const auto mask = ecc_decode(w);
        ASSERT_EQ(mask.status, EccStatus::kDetectedDouble)
            << "bits " << b1 << "," << b2;
        ASSERT_EQ(ecc_decode_ref(w).status, EccStatus::kDetectedDouble)
            << "bits " << b1 << "," << b2;
      }
    }
  }
}

TEST(EccDifferentialTest, ArbitraryCorruptionAgrees) {
  // Beyond the SEC-DED hypothesis (0..6 flips, including aliasing triples):
  // whatever each kernel decides, they must decide it identically.
  Xoshiro256 rng(404);
  for (int i = 0; i < 4000; ++i) {
    Word72 w = ecc_encode(rng.next());
    const auto flips = rng.uniform_int(0, 6);
    for (std::uint64_t f = 0; f < flips; ++f) {
      flip_bit(w, static_cast<unsigned>(rng.uniform_int(0, 71)));
    }
    expect_same_decode(w, "random corruption");
  }
}

TEST(EccDifferentialTest, RandomRawWordsAgree) {
  // Raw 72-bit patterns that were never produced by the encoder (e.g. after
  // a latch-up wipes a device mid-word) must also decode identically.
  Xoshiro256 rng(505);
  for (int i = 0; i < 4000; ++i) {
    Word72 w{rng.next(), static_cast<std::uint8_t>(rng.next() & 0xFF)};
    expect_same_decode(w, "raw word");
  }
}

}  // namespace
