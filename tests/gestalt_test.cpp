// Tests for the Sect. 5 vision substrate: the GestaltBus of cooperating
// cross-layer agents, and its integration with the assumption registry
// ("a design assumption failure caught by a run-time detector should
// trigger a request for adaptation at model level, and vice-versa").
#include <gtest/gtest.h>

#include "core/context.hpp"
#include "core/gestalt.hpp"
#include "core/registry.hpp"

namespace {

using namespace aft::core;

TEST(GestaltBusTest, EventsReachEveryOtherLayer) {
  GestaltBus bus;
  int model_hits = 0, deploy_hits = 0, run_hits = 0;
  bus.attach(GestaltAgent("model", BindingTime::kDesign,
                          [&](const GestaltEvent&) { ++model_hits; }));
  bus.attach(GestaltAgent("deployer", BindingTime::kDeploy,
                          [&](const GestaltEvent&) { ++deploy_hits; }));
  bus.attach(GestaltAgent("executive", BindingTime::kRun,
                          [&](const GestaltEvent&) { ++run_hits; }));

  const std::size_t delivered = bus.publish(GestaltEvent{
      GestaltKind::kAssumptionFailure, BindingTime::kRun, "fault-class",
      "permanent"});
  EXPECT_EQ(delivered, 2u);
  EXPECT_EQ(model_hits, 1);
  EXPECT_EQ(deploy_hits, 1);
  EXPECT_EQ(run_hits, 0) << "a layer must not react to its own events";
}

TEST(GestaltBusTest, SameLayerAgentsAreSkipped) {
  GestaltBus bus;
  int hits = 0;
  bus.attach(GestaltAgent("run-a", BindingTime::kRun,
                          [&](const GestaltEvent&) { ++hits; }));
  bus.attach(GestaltAgent("run-b", BindingTime::kRun,
                          [&](const GestaltEvent&) { ++hits; }));
  bus.publish(GestaltEvent{GestaltKind::kDeduction, BindingTime::kRun, "t", ""});
  EXPECT_EQ(hits, 0);
  bus.publish(GestaltEvent{GestaltKind::kDeduction, BindingTime::kDesign, "t", ""});
  EXPECT_EQ(hits, 2);
}

TEST(GestaltBusTest, HistoryAndDeliveryAccounting) {
  GestaltBus bus;
  bus.attach(GestaltAgent("m", BindingTime::kDesign, [](const GestaltEvent&) {}));
  bus.attach(GestaltAgent("r", BindingTime::kRun, [](const GestaltEvent&) {}));
  bus.publish(GestaltEvent{GestaltKind::kDeduction, BindingTime::kRun, "a", "1"});
  bus.publish(GestaltEvent{GestaltKind::kAdaptationRequest, BindingTime::kDesign,
                           "b", "2"});
  EXPECT_EQ(bus.history().size(), 2u);
  const auto by_layer = bus.deliveries_by_layer();
  EXPECT_EQ(by_layer.at(BindingTime::kDesign), 1u);
  EXPECT_EQ(by_layer.at(BindingTime::kRun), 1u);
}

TEST(GestaltIntegrationTest, RunTimeClashPropagatesAcrossLayers) {
  // The paper's closing loop: a run-time detector catches an assumption
  // failure; the model layer receives an adaptation request; the deploy
  // layer re-binds its assumption variable; knowledge flows back down as a
  // deduction.
  GestaltBus bus;
  Context ctx;
  AssumptionRegistry registry;
  registry.emplace<std::string>(
      "env.fault-class", "environment exhibits transient faults",
      Subject::kPhysicalEnvironment,
      Provenance{.origin = "design review", .rationale = "historic data",
                 .stated_at = BindingTime::kDesign},
      std::string("transient"), "observed.fault-class");

  std::vector<std::string> model_log;
  bool deploy_rebound = false;

  bus.attach(GestaltAgent("model", BindingTime::kDesign,
                          [&](const GestaltEvent& e) {
                            if (e.kind == GestaltKind::kAssumptionFailure) {
                              model_log.push_back("revise model: " + e.payload);
                            }
                          }));
  bus.attach(GestaltAgent("deployer", BindingTime::kDeploy,
                          [&](const GestaltEvent& e) {
                            if (e.kind == GestaltKind::kAssumptionFailure) {
                              deploy_rebound = true;
                            }
                          }));

  // Wire the registry's clash handler into the bus as the run-time agent.
  registry.on_clash([&](const Clash& clash, const Diagnosis&) {
    bus.publish(GestaltEvent{GestaltKind::kAssumptionFailure, BindingTime::kRun,
                             clash.assumption_id, clash.observed});
  });

  // The run-time detector (e.g. the alpha-count oracle) publishes its
  // deduction into the context; verification clashes; the bus fans out.
  ctx.set("observed.fault-class", std::string("permanent"));
  const auto clashes = registry.verify_all(ctx);
  ASSERT_EQ(clashes.size(), 1u);
  ASSERT_EQ(model_log.size(), 1u);
  EXPECT_EQ(model_log[0], "revise model: permanent");
  EXPECT_TRUE(deploy_rebound);
}

TEST(GestaltKindTest, Names) {
  EXPECT_STREQ(to_string(GestaltKind::kAssumptionFailure), "assumption-failure");
  EXPECT_STREQ(to_string(GestaltKind::kDeduction), "deduction");
  EXPECT_STREQ(to_string(GestaltKind::kAdaptationRequest), "adaptation-request");
}

}  // namespace
