// Tests for the time-redundancy pattern and the disturbance estimator.
#include <gtest/gtest.h>

#include <memory>

#include "autonomic/estimator.hpp"
#include "ftpat/time_redundancy.hpp"
#include "vote/dtof.hpp"

namespace {

using aft::arch::ScriptedComponent;
using aft::ftpat::TimeRedundancyComponent;

std::shared_ptr<ScriptedComponent> plus_one(const std::string& id) {
  return std::make_shared<ScriptedComponent>(id,
                                             [](std::int64_t v) { return v + 1; });
}

TEST(TimeRedundancyTest, ConstructorValidation) {
  EXPECT_THROW(TimeRedundancyComponent("t", nullptr), std::invalid_argument);
  EXPECT_THROW(TimeRedundancyComponent("t", plus_one("i"), 1), std::invalid_argument);
}

TEST(TimeRedundancyTest, CleanPath) {
  auto inner = plus_one("i");
  TimeRedundancyComponent tr("t", inner, 2);
  const auto r = tr.process(41);
  EXPECT_TRUE(r.ok);
  EXPECT_EQ(r.value, 42);
  EXPECT_EQ(inner->invocations(), 2u);  // both executions ran
  EXPECT_EQ(tr.disagreements(), 0u);
}

TEST(TimeRedundancyTest, DuplexDetectsSilentCorruptionAndRetries) {
  auto inner = plus_one("i");
  TimeRedundancyComponent tr("t", inner, 2, /*max_round_retries=*/4);
  inner->corrupt_next(1, 100);  // one of the two executions silently wrong
  const auto r = tr.process(0);
  EXPECT_TRUE(r.ok);            // retry round agreed
  EXPECT_EQ(r.value, 1);        // the corruption never escaped
  EXPECT_EQ(tr.disagreements(), 1u);
  EXPECT_EQ(tr.round_retries(), 1u);
}

TEST(TimeRedundancyTest, TriplexOutvotesCorruptionWithoutRetry) {
  auto inner = plus_one("i");
  TimeRedundancyComponent tr("t", inner, 3);
  inner->corrupt_next(1, 100);
  const auto r = tr.process(0);
  EXPECT_TRUE(r.ok);
  EXPECT_EQ(r.value, 1);
  EXPECT_EQ(tr.disagreements(), 1u);
  EXPECT_EQ(tr.round_retries(), 0u);  // majority of 3: no re-run needed
}

TEST(TimeRedundancyTest, SignalledFailureIsRetriedAsARound) {
  auto inner = plus_one("i");
  TimeRedundancyComponent tr("t", inner, 2, 4);
  inner->fail_next(1);
  EXPECT_TRUE(tr.process(0).ok);
  EXPECT_EQ(tr.round_retries(), 1u);
}

TEST(TimeRedundancyTest, PermanentFaultExhaustsRounds) {
  // The pattern's blind spot, stated in the header: a permanent fault
  // defeats time redundancy (every round fails identically).
  auto inner = plus_one("i");
  TimeRedundancyComponent tr("t", inner, 2, 3);
  inner->fail_always();
  EXPECT_FALSE(tr.process(0).ok);
  EXPECT_EQ(tr.round_failures(), 1u);
  EXPECT_EQ(tr.round_retries(), 3u);
}

TEST(TimeRedundancyTest, ConsistentCorruptionEscapesDuplex) {
  // Equally fundamental: if BOTH executions are identically corrupted
  // (common-mode), comparison cannot see it.
  auto inner = plus_one("i");
  TimeRedundancyComponent tr("t", inner, 2);
  inner->corrupt_next(2, 100);  // both executions corrupted identically
  const auto r = tr.process(0);
  EXPECT_TRUE(r.ok);
  EXPECT_EQ(r.value, 101);  // wrong, agreed: undetectable by time redundancy
  EXPECT_EQ(tr.disagreements(), 0u);
}

// --- DisturbanceEstimator -------------------------------------------------------

aft::vote::RoundReport round_of(std::size_t n, std::size_t dissent, bool ok = true) {
  aft::vote::RoundReport r;
  r.n = n;
  r.dissent = dissent;
  r.success = ok;
  r.distance = ok ? aft::vote::dtof(n, dissent) : 0;
  return r;
}

TEST(EstimatorTest, ParamValidation) {
  EXPECT_THROW(aft::autonomic::DisturbanceEstimator(
                   aft::autonomic::DisturbanceEstimator::Params{.alpha = 0.0}),
               std::invalid_argument);
  EXPECT_THROW(aft::autonomic::DisturbanceEstimator(
                   aft::autonomic::DisturbanceEstimator::Params{.alpha = 1.5}),
               std::invalid_argument);
}

TEST(EstimatorTest, ConsensusDrivesLevelToZero) {
  aft::autonomic::DisturbanceEstimator est(
      aft::autonomic::DisturbanceEstimator::Params{.alpha = 0.5});
  for (int i = 0; i < 50; ++i) est.observe(round_of(7, 0));
  EXPECT_LT(est.level(), 1e-6);
}

TEST(EstimatorTest, FailuresDriveLevelToOne) {
  aft::autonomic::DisturbanceEstimator est(
      aft::autonomic::DisturbanceEstimator::Params{.alpha = 0.5});
  for (int i = 0; i < 50; ++i) est.observe(round_of(7, 4, /*ok=*/false));
  EXPECT_GT(est.level(), 0.999);
}

TEST(EstimatorTest, RisesDuringBurstDecaysAfter) {
  aft::autonomic::DisturbanceEstimator est(
      aft::autonomic::DisturbanceEstimator::Params{.alpha = 0.1});
  for (int i = 0; i < 100; ++i) est.observe(round_of(7, 0));
  const double calm = est.level();
  for (int i = 0; i < 30; ++i) est.observe(round_of(7, 2));
  const double burst = est.level();
  EXPECT_GT(burst, calm + 0.1);
  for (int i = 0; i < 200; ++i) est.observe(round_of(7, 0));
  EXPECT_LT(est.level(), 0.01);
}

// Regression: a *successful* round whose farm is too small for a dtof
// signal (dtof_max(n) == 0) used to fall through to the failed-round score
// of 1.0 — an empty-farm success read as full disturbance and pinned the
// EWMA high.  Carrying no disturbance evidence, it must contribute 0.
TEST(EstimatorTest, SuccessWithNoDtofSignalContributesZero) {
  aft::autonomic::DisturbanceEstimator est(
      aft::autonomic::DisturbanceEstimator::Params{.alpha = 1.0});
  est.observe(round_of(0, 0));  // successful, dtof_max(0) == 0
  EXPECT_DOUBLE_EQ(est.level(), 0.0);
  // A *failed* degenerate round still counts as full disturbance.
  est.observe(round_of(0, 0, /*ok=*/false));
  EXPECT_DOUBLE_EQ(est.level(), 1.0);
}

TEST(EstimatorTest, PublishesIntoContext) {
  aft::core::Context ctx;
  aft::autonomic::DisturbanceEstimator est(
      aft::autonomic::DisturbanceEstimator::Params{.alpha = 1.0,
                                                   .context_key = "env.dist"},
      &ctx);
  est.observe(round_of(7, 2));  // instantaneous: 1 - 2/4 = 0.5
  const auto published = ctx.get<double>("env.dist");
  ASSERT_TRUE(published.has_value());
  EXPECT_DOUBLE_EQ(*published, 0.5);
  EXPECT_EQ(est.rounds(), 1u);
}

TEST(EstimatorTest, ResetClears) {
  aft::autonomic::DisturbanceEstimator est;
  est.observe(round_of(3, 1));
  EXPECT_GT(est.level(), 0.0);
  est.reset();
  EXPECT_DOUBLE_EQ(est.level(), 0.0);
  EXPECT_EQ(est.rounds(), 0u);
}

}  // namespace
