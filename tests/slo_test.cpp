// Tests for the SLO plane: sim-time-windowed Timelines (per-window
// quantiles, deterministic merge), SloTracker burn-rate transitions with
// hysteresis, the switchboard bridge (obs.slo/breach raises redundancy),
// and the "timelines"/"quantiles" JSON export shape.
#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "arch/event_bus.hpp"
#include "autonomic/switchboard.hpp"
#include "obs/metrics.hpp"
#include "obs/obs.hpp"
#include "obs/slo.hpp"
#include "obs/timeline.hpp"
#include "obs/trace.hpp"
#include "vote/voting_farm.hpp"

namespace {

using aft::obs::MetricsRegistry;
using aft::obs::SloPolicy;
using aft::obs::SloTracker;
using aft::obs::Timeline;
using aft::obs::TimelineKind;

// --- Timeline -----------------------------------------------------------------

TEST(TimelineTest, SamplesLandInTheirWindows) {
  Timeline tl(10, TimelineKind::kStat);
  tl.observe(0, 5);
  tl.observe(9, 7);
  tl.observe(10, 100);  // window 1
  tl.observe(25, 1);    // window 2

  const std::vector<Timeline::WindowView> w = tl.snapshot();
  ASSERT_EQ(w.size(), 3u);
  EXPECT_EQ(w[0].index, 0u);
  EXPECT_EQ(w[0].count, 2u);
  EXPECT_EQ(w[0].min, 5u);
  EXPECT_EQ(w[0].max, 7u);
  EXPECT_EQ(w[1].index, 1u);
  EXPECT_EQ(w[1].count, 1u);
  EXPECT_EQ(w[1].p50, 100u);
  EXPECT_EQ(w[2].index, 2u);
  EXPECT_EQ(w[2].count, 1u);
}

TEST(TimelineTest, PerWindowQuantilesAreExactForSmallValues) {
  Timeline tl(100, TimelineKind::kStat);
  // Values < 32 occupy exact buckets, so per-window quantiles are exact.
  for (std::uint64_t i = 1; i <= 10; ++i) tl.observe(5, i);
  tl.observe(150, 31);  // roll window 0 into the finalized store

  const std::vector<Timeline::WindowView> w = tl.snapshot();
  ASSERT_EQ(w.size(), 2u);
  EXPECT_EQ(w[0].p50, 5u);
  EXPECT_EQ(w[0].p99, 10u);
  EXPECT_EQ(w[0].p999, 10u);
  EXPECT_EQ(w[0].sum, 55u);
}

TEST(TimelineTest, MergeMatchesSingleStreamSnapshot) {
  // Interleave one stream across two timelines job-style; the merged
  // snapshot must equal the single-stream snapshot window for window.
  Timeline whole(10, TimelineKind::kStat);
  Timeline part_a(10, TimelineKind::kStat);
  Timeline part_b(10, TimelineKind::kStat);
  for (std::uint64_t t = 0; t < 100; t += 3) {
    const std::uint64_t v = (t * 7) % 60;
    whole.observe(t, v);
    ((t / 3) % 2 == 0 ? part_a : part_b).observe(t, v);
  }
  part_a.merge(part_b);

  const auto lhs = whole.snapshot();
  const auto rhs = part_a.snapshot();
  ASSERT_EQ(lhs.size(), rhs.size());
  for (std::size_t i = 0; i < lhs.size(); ++i) {
    EXPECT_EQ(lhs[i].index, rhs[i].index) << i;
    EXPECT_EQ(lhs[i].count, rhs[i].count) << i;
    EXPECT_EQ(lhs[i].sum, rhs[i].sum) << i;
    EXPECT_EQ(lhs[i].min, rhs[i].min) << i;
    EXPECT_EQ(lhs[i].max, rhs[i].max) << i;
    EXPECT_EQ(lhs[i].p50, rhs[i].p50) << i;
    EXPECT_EQ(lhs[i].p99, rhs[i].p99) << i;
    EXPECT_EQ(lhs[i].p999, rhs[i].p999) << i;
  }
}

TEST(TimelineTest, MergeIsOrderInsensitiveOnDisjointWindows) {
  Timeline early(10, TimelineKind::kStat);
  early.observe(5, 1);
  Timeline late(10, TimelineKind::kStat);
  late.observe(95, 9);

  Timeline ab = early;
  ab.merge(late);
  Timeline ba = late;
  ba.merge(early);
  const auto a = ab.snapshot();
  const auto b = ba.snapshot();
  ASSERT_EQ(a.size(), 2u);
  ASSERT_EQ(b.size(), 2u);
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].index, b[i].index);
    EXPECT_EQ(a[i].count, b[i].count);
    EXPECT_EQ(a[i].p50, b[i].p50);
  }
}

TEST(TimelineTest, CounterKindAccumulatesDeltasPerWindow) {
  Timeline tl(10, TimelineKind::kCounter);
  tl.observe(0, 1);
  tl.observe(3, 2);
  tl.observe(17, 5);
  const auto w = tl.snapshot();
  ASSERT_EQ(w.size(), 2u);
  EXPECT_EQ(w[0].sum, 3u);
  EXPECT_EQ(w[1].sum, 5u);
}

TEST(TimelineTest, GaugeKindKeepsLastValuePerWindow) {
  Timeline tl(10, TimelineKind::kGauge);
  tl.observe(0, 3);
  tl.observe(4, 5);
  tl.observe(12, 9);
  const auto w = tl.snapshot();
  ASSERT_EQ(w.size(), 2u);
  EXPECT_EQ(w[0].last, 5u);
  EXPECT_EQ(w[1].last, 9u);
}

// --- MetricsRegistry timeline routing + JSON ----------------------------------

TEST(MetricsTimelineTest, RegistryRoutesIntoRegisteredTimelines) {
  MetricsRegistry reg;
  reg.timeline("lat", 10);
  reg.timeline_counter("calls", 10);
  reg.timeline_gauge("level", 10);

  reg.set_time(2);
  reg.observe("lat", 4.0);
  reg.add("calls", 2);
  reg.set_gauge("level", 3.0);
  reg.set_time(15);
  reg.observe("lat", 8.0);
  reg.add("calls", 1);
  reg.set_gauge("level", 5.0);

  const Timeline* lat = reg.find_timeline("lat");
  ASSERT_NE(lat, nullptr);
  const auto lw = lat->snapshot();
  ASSERT_EQ(lw.size(), 2u);
  EXPECT_EQ(lw[0].p50, 4u);
  EXPECT_EQ(lw[1].p50, 8u);

  const Timeline* calls = reg.find_timeline("calls");
  ASSERT_NE(calls, nullptr);
  const auto cw = calls->snapshot();
  ASSERT_EQ(cw.size(), 2u);
  EXPECT_EQ(cw[0].sum, 2u);
  EXPECT_EQ(cw[1].sum, 1u);

  const std::string json = reg.json();
  EXPECT_NE(json.find(R"("timelines":{)"), std::string::npos);
  EXPECT_NE(json.find(R"("calls":{"kind":"counter","window":10)"),
            std::string::npos);
  EXPECT_NE(json.find(R"("level":{"kind":"gauge","window":10)"),
            std::string::npos);
  EXPECT_NE(json.find(R"("lat":{"kind":"stat","window":10)"),
            std::string::npos);
  EXPECT_NE(json.find(R"("quantiles":{"lat":{"count":2)"), std::string::npos);
}

TEST(MetricsTimelineTest, RegistrationIsIdempotentFirstWindowWins) {
  MetricsRegistry reg;
  Timeline& first = reg.timeline("lat", 10);
  Timeline& again = reg.timeline("lat", 999);
  EXPECT_EQ(&first, &again);
  EXPECT_EQ(again.window_ticks(), 10u);
}

TEST(MetricsTimelineTest, MergePreservesTimelinesAcrossRegistries) {
  MetricsRegistry a;
  a.timeline("lat", 10);
  a.set_time(1);
  a.observe("lat", 2.0);

  MetricsRegistry b;
  b.timeline("lat", 10);
  b.set_time(12);
  b.observe("lat", 6.0);

  a.merge(b);
  const Timeline* lat = a.find_timeline("lat");
  ASSERT_NE(lat, nullptr);
  const auto w = lat->snapshot();
  ASSERT_EQ(w.size(), 2u);
  EXPECT_EQ(w[0].p50, 2u);
  EXPECT_EQ(w[1].p50, 6u);

  // Post-merge samples must keep flowing into the (re-linked) timeline.
  a.set_time(25);
  a.observe("lat", 9.0);
  ASSERT_EQ(a.find_timeline("lat")->snapshot().size(), 3u);
}

TEST(MetricsTimelineTest, MergedIntegerSectionsEqualSingleRegistryBytes) {
  // The campaign property in miniature: split a stream over two
  // registries, merge in job order, compare against one registry that saw
  // everything.  The integer-backed sections (counters, quantiles,
  // timelines) must match byte for byte; the Welford mean/stddev may
  // differ in the last ulp (parallel Welford is associativity-noisy),
  // which is fine — campaign byte-identity only requires that the *job
  // partition* is fixed, and it is, for every AFT_THREADS value
  // (campaign_test pins that end to end).
  const auto feed = [](MetricsRegistry& reg, std::uint64_t t0,
                       std::uint64_t t1) {
    for (std::uint64_t t = t0; t < t1; t += 2) {
      reg.set_time(t);
      reg.observe("lat", static_cast<double>((t * 13) % 90));
      reg.add("calls");
      reg.set_gauge("level", static_cast<double>(t % 7));
    }
  };
  MetricsRegistry whole;
  whole.timeline("lat", 25);
  whole.timeline_counter("calls", 25);
  whole.timeline_gauge("level", 25);
  feed(whole, 0, 200);

  MetricsRegistry j0;
  j0.timeline("lat", 25);
  j0.timeline_counter("calls", 25);
  j0.timeline_gauge("level", 25);
  feed(j0, 0, 100);
  MetricsRegistry j1;
  j1.timeline("lat", 25);
  j1.timeline_counter("calls", 25);
  j1.timeline_gauge("level", 25);
  feed(j1, 100, 200);
  j0.merge(j1);

  const auto integer_sections = [](const std::string& json) {
    const std::size_t at = json.find(R"("quantiles")");
    EXPECT_NE(at, std::string::npos);
    return json.substr(at);
  };
  EXPECT_EQ(integer_sections(whole.json()), integer_sections(j0.json()));
  EXPECT_EQ(whole.counter("calls"), j0.counter("calls"));
  EXPECT_DOUBLE_EQ(whole.gauge("level"), j0.gauge("level"));
  ASSERT_NE(j0.find_stat("lat"), nullptr);
  EXPECT_EQ(j0.find_stat("lat")->count(), 100u);
}

// --- SloTracker ---------------------------------------------------------------

SloPolicy p99_under(std::uint64_t threshold, std::uint64_t window) {
  SloPolicy p;
  p.budget_permille = 10;  // p99
  p.threshold_ticks = threshold;
  p.window_ticks = window;
  return p;
}

TEST(SloTrackerTest, RejectsDegeneratePolicies) {
  SloPolicy no_window;
  no_window.window_ticks = 0;
  EXPECT_THROW(SloTracker("x", no_window), std::invalid_argument);
  SloPolicy no_budget;
  no_budget.budget_permille = 0;
  EXPECT_THROW(SloTracker("x", no_budget), std::invalid_argument);
}

TEST(SloTrackerTest, BreachesWhenWindowBurnExceedsAlert) {
  SloTracker slo("lat", p99_under(10, 100));
  std::vector<bool> published;
  slo.set_publisher([&](bool breach) { published.push_back(breach); });

  // Window 0: every sample over threshold — burn far above 1000 permille.
  for (std::uint64_t i = 0; i < 10; ++i) slo.record(i * 10, 50);
  EXPECT_FALSE(slo.breached());  // verdicts land at window boundaries
  slo.record(100, 5);            // crossing into window 1 evaluates window 0
  EXPECT_TRUE(slo.breached());
  EXPECT_EQ(slo.breaches(), 1u);
  ASSERT_EQ(published.size(), 1u);
  EXPECT_TRUE(published[0]);
}

TEST(SloTrackerTest, RecoversWithHysteresis) {
  SloPolicy policy = p99_under(10, 100);
  policy.burn_clear_permille = 500;
  SloTracker slo("lat", policy);

  for (std::uint64_t i = 0; i < 10; ++i) slo.record(i * 10, 50);
  slo.record(100, 5);  // breach on window 0
  ASSERT_TRUE(slo.breached());

  // Window 1 is all-fast: burn 0 < clear — recover at the next boundary.
  for (std::uint64_t i = 1; i < 10; ++i) slo.record(100 + i * 10, 5);
  slo.record(200, 5);
  EXPECT_FALSE(slo.breached());
  EXPECT_EQ(slo.breaches(), 1u);
  EXPECT_EQ(slo.recoveries(), 1u);
}

TEST(SloTrackerTest, BurnWithinBudgetNeverBreaches) {
  // 1 of 200 samples over threshold = 5 permille over, budget 10 permille:
  // burn 500 < alert 1000.
  SloTracker slo("lat", p99_under(10, 1000));
  for (std::uint64_t i = 0; i < 200; ++i) {
    slo.record(i, i == 0 ? 50 : 5);
  }
  slo.flush(1000);
  EXPECT_FALSE(slo.breached());
  EXPECT_EQ(slo.breaches(), 0u);
}

TEST(SloTrackerTest, SilentStreamRecoversAcrossEmptyWindows) {
  SloTracker slo("lat", p99_under(10, 100));
  for (std::uint64_t i = 0; i < 10; ++i) slo.record(i * 10, 50);
  slo.record(100, 50);  // breach; window 1 starts burning too
  ASSERT_TRUE(slo.breached());
  // Long silence, then one fast sample far in the future: the gap windows
  // saw no traffic, burn nothing, and clear the breach.
  slo.record(5000, 5);
  EXPECT_FALSE(slo.breached());
  EXPECT_EQ(slo.recoveries(), 1u);
}

TEST(SloTrackerTest, GapAfterABurningWindowPublishesNoSpuriousPair) {
  // Regression: a hot window followed by an idle gap that straddles window
  // boundaries.  At traffic resumption the batch closes the hot window
  // (breach) AND collapses the idle windows (recover) in one step; the net
  // state never changed while anyone could observe it, so publishing the
  // breach+recover pair here — arbitrarily after the overload ended —
  // would raise redundancy against history.  Pre-fix, the pair leaked.
  SloTracker slo("lat", p99_under(10, 100));
  std::vector<bool> published;
  slo.set_publisher([&](bool breach) { published.push_back(breach); });

  for (std::uint64_t i = 0; i < 10; ++i) slo.record(i * 10, 50);  // hot
  slo.record(5000, 5);  // idle gap [100, 5000), then traffic resumes

  EXPECT_FALSE(slo.breached());
  EXPECT_TRUE(published.empty());
  EXPECT_EQ(slo.breaches(), 0u);
  EXPECT_EQ(slo.recoveries(), 0u);
}

TEST(SloTrackerTest, SingleBoundaryGapStillPublishesALegitimateBreach) {
  // The counterpart guard: when the next sample lands in the immediately
  // following window there IS no idle stretch — the hot verdict is the
  // tracker's live state and must publish.
  SloTracker slo("lat", p99_under(10, 100));
  std::vector<bool> published;
  slo.set_publisher([&](bool breach) { published.push_back(breach); });

  for (std::uint64_t i = 0; i < 10; ++i) slo.record(i * 10, 50);
  slo.record(105, 5);  // next window over: evaluate window 0 now

  EXPECT_TRUE(slo.breached());
  ASSERT_EQ(published.size(), 1u);
  EXPECT_TRUE(published[0]);
}

TEST(SloTrackerTest, BreachedThenFlushedTrackerRecoversWhenTrafficResumes) {
  // Regression: breach via flush(), then an idle gap, then traffic again.
  // Pre-fix the reopen leg skipped the gap collapse entirely, so a
  // breached-then-flushed tracker stayed breached across an arbitrarily
  // long silence — the switchboard never saw the recover.
  SloTracker slo("lat", p99_under(10, 100));
  std::vector<bool> published;
  slo.set_publisher([&](bool breach) { published.push_back(breach); });

  for (std::uint64_t i = 0; i < 10; ++i) slo.record(i * 10, 50);
  slo.flush(95);  // evaluates the hot window: breach
  ASSERT_TRUE(slo.breached());
  ASSERT_EQ(published.size(), 1u);
  EXPECT_TRUE(published[0]);

  slo.record(5000, 5);  // idle windows in between recover the tracker
  EXPECT_FALSE(slo.breached());
  ASSERT_EQ(published.size(), 2u);
  EXPECT_FALSE(published[1]);
  EXPECT_EQ(slo.recoveries(), 1u);

  // The tracker is fully live again: a fresh hot window re-breaches at the
  // next boundary crossing (5199 is still in the immediately next window —
  // no idle stretch, so the verdict publishes).
  for (std::uint64_t i = 0; i < 10; ++i) slo.record(5000 + i * 10, 50);
  slo.record(5199, 5);
  EXPECT_TRUE(slo.breached());
  EXPECT_EQ(slo.breaches(), 2u);
}

TEST(SloTrackerTest, FlushEvaluatesTheOpenWindow) {
  SloTracker slo("lat", p99_under(10, 1000));
  for (std::uint64_t i = 0; i < 5; ++i) slo.record(i, 99);
  EXPECT_FALSE(slo.breached());
  slo.flush(5);
  EXPECT_TRUE(slo.breached());
  EXPECT_EQ(slo.breaches(), 1u);
}

#if !defined(AFT_OBS_DISABLED)
TEST(SloTrackerTest, TransitionsEmitTraceEventsAndMetrics) {
  aft::obs::TraceSink sink;
  MetricsRegistry reg;
  aft::obs::ScopedObs scope(&sink, &reg);

  SloTracker slo("rpc", p99_under(10, 100));
  for (std::uint64_t i = 0; i < 10; ++i) slo.record(i * 10, 50);
  slo.record(100, 5);
  slo.record(200, 5);  // evaluates the all-fast window 1: recover

  const std::string jsonl = sink.jsonl();
  EXPECT_NE(jsonl.find(R"("component":"obs.slo","event":"breach")"),
            std::string::npos);
  EXPECT_NE(jsonl.find(R"("component":"obs.slo","event":"recover")"),
            std::string::npos);
  EXPECT_NE(jsonl.find(R"("slo":"rpc")"), std::string::npos);
  EXPECT_NE(jsonl.find(R"("burn_permille":)"), std::string::npos);
  EXPECT_EQ(reg.counter("obs.slo.breaches"), 1u);
  EXPECT_EQ(reg.counter("obs.slo.recoveries"), 1u);
}
#endif

// --- Switchboard bridge -------------------------------------------------------

TEST(SwitchboardSloTest, BreachRaisesRedundancyWithoutValueFaults) {
  aft::vote::VotingFarm farm(3, [](aft::vote::Ballot input, std::size_t) {
    return input + 1;  // always correct: no dissent ever
  });
  aft::autonomic::ReflectiveSwitchboard::Policy policy;
  policy.min_replicas = 3;
  policy.max_replicas = 9;
  policy.step = 2;
  aft::autonomic::ReflectiveSwitchboard board(farm, policy, /*key=*/0x1);

  aft::arch::EventBus bus;
  board.bind_slo(bus);

  SloTracker slo("rpc", p99_under(10, 100));
  slo.set_publisher([&bus](bool breach) {
    aft::arch::Message msg;
    msg.topic = breach ? "obs.slo/breach" : "obs.slo/recover";
    msg.source = "obs.slo";
    bus.publish(msg);
  });

  ASSERT_EQ(farm.replicas(), 3u);
  for (std::uint64_t i = 0; i < 10; ++i) slo.record(i * 10, 50);
  slo.record(100, 5);  // breach -> publish -> board raises

  EXPECT_EQ(farm.replicas(), 5u);
  EXPECT_EQ(board.slo_raises(), 1u);

  // A second breach event would raise again up to the cap; a recover does
  // not shrink by itself (the usual consecutive-high rule does that).
  aft::arch::Message recover;
  recover.topic = "obs.slo/recover";
  recover.source = "obs.slo";
  bus.publish(recover);
  EXPECT_EQ(farm.replicas(), 5u);
}

TEST(SwitchboardSloTest, RaisesSaturateAtMaxReplicas) {
  aft::vote::VotingFarm farm(3, [](aft::vote::Ballot input, std::size_t) {
    return input;
  });
  aft::autonomic::ReflectiveSwitchboard::Policy policy;
  policy.min_replicas = 3;
  policy.max_replicas = 5;
  policy.step = 2;
  aft::autonomic::ReflectiveSwitchboard board(farm, policy, /*key=*/0x2);
  aft::arch::EventBus bus;
  board.bind_slo(bus);

  aft::arch::Message breach;
  breach.topic = "obs.slo/breach";
  breach.source = "obs.slo";
  bus.publish(breach);
  EXPECT_EQ(farm.replicas(), 5u);
  bus.publish(breach);
  EXPECT_EQ(farm.replicas(), 5u);  // saturated: no further raise
  EXPECT_EQ(board.slo_raises(), 1u);
}

}  // namespace
